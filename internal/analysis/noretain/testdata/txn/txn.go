// Package fix seeds noretain violations around pooled *bus.Txn values:
// every flagged line retains a transaction past the call that delivered
// it, which aliases a recycled object once the pool reuses the slot.
package fix

import "csbsim/internal/bus"

type dev struct {
	last   *bus.Txn
	hist   []*bus.Txn
	byAddr map[uint64]*bus.Txn
}

type rec struct{ t *bus.Txn }

var (
	lastGlobal *bus.Txn
	lastRec    rec
	deferred   []func()
)

func (d *dev) onDone(t *bus.Txn) {
	d.last = t // want `pooled \*bus\.Txn "t" stored in a location that outlives the call`
	d.hist = append(d.hist, t) // want `pooled \*bus\.Txn "t" stored`
	d.byAddr[t.Addr] = t // want `pooled \*bus\.Txn "t" stored`
	lastGlobal = t // want `pooled \*bus\.Txn "t" stored`
	lastRec = rec{t: t} // want `pooled \*bus\.Txn "t" stored`
}

func send(ch chan *bus.Txn, t *bus.Txn) {
	ch <- t // want `pooled \*bus\.Txn "t" sent on a channel`
}

func capture(t *bus.Txn) {
	deferred = append(deferred, func() { _ = t.Addr }) // want `closure captures pooled \*bus\.Txn "t"`
}

// inline invokes the literal on the spot, so the capture cannot outlive
// the call.
func inline(t *bus.Txn) uint64 {
	return func() uint64 { return t.Addr }()
}

// copyOut takes what it needs by value, the sanctioned pattern.
func copyOut(t *bus.Txn) (addr uint64, size int) {
	return t.Addr, t.Size
}

func local(t *bus.Txn) {
	u := t
	_ = u
}

type pool struct{ free []*bus.Txn }

func (p *pool) put(t *bus.Txn) {
	p.free = append(p.free, t) //csb:pool
}

// putDoc is sanctioned pool management, annotated at function level.
//
//csb:pool
func (p *pool) putDoc(t *bus.Txn) {
	p.free = append(p.free, t)
}

// pinned models the pin-counted callback captures of the retire stage.
func pinned(t *bus.Txn, register func(func())) {
	//csb:pool — the capture is pin-counted by the caller
	register(func() { _ = t.Addr })
}
