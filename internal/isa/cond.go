package isa

// Cond enumerates the SPARC-style integer condition codes used by OpBR.
type Cond uint8

const (
	CondN   Cond = iota // never
	CondE               // equal (Z)
	CondLE              // less or equal, signed (Z or (N xor V))
	CondL               // less, signed (N xor V)
	CondLEU             // less or equal, unsigned (C or Z)
	CondCS              // carry set / less, unsigned (C)
	CondNEG             // negative (N)
	CondVS              // overflow set (V)
	CondA               // always
	CondNE              // not equal (!Z)
	CondG               // greater, signed
	CondGE              // greater or equal, signed
	CondGU              // greater, unsigned
	CondCC              // carry clear / greater or equal, unsigned
	CondPOS             // positive (!N)
	CondVC              // overflow clear (!V)
	NumConds
)

var condNames = [NumConds]string{
	CondN: "bn", CondE: "bz", CondLE: "ble", CondL: "bl",
	CondLEU: "bleu", CondCS: "blu", CondNEG: "bneg", CondVS: "bvs",
	CondA: "ba", CondNE: "bnz", CondG: "bg", CondGE: "bge",
	CondGU: "bgu", CondCC: "bgeu", CondPOS: "bpos", CondVC: "bvc",
}

// Name returns the branch mnemonic for the condition.
func (c Cond) Name() string {
	if c >= NumConds {
		return "b?"
	}
	return condNames[c]
}

// Flags holds the integer condition codes, set by the *CC instructions from
// their 64-bit results.
type Flags struct {
	N, Z, V, C bool
}

// Eval reports whether the condition holds under the given flags.
func (c Cond) Eval(f Flags) bool {
	switch c {
	case CondN:
		return false
	case CondE:
		return f.Z
	case CondLE:
		return f.Z || (f.N != f.V)
	case CondL:
		return f.N != f.V
	case CondLEU:
		return f.C || f.Z
	case CondCS:
		return f.C
	case CondNEG:
		return f.N
	case CondVS:
		return f.V
	case CondA:
		return true
	case CondNE:
		return !f.Z
	case CondG:
		return !(f.Z || (f.N != f.V))
	case CondGE:
		return f.N == f.V
	case CondGU:
		return !(f.C || f.Z)
	case CondCC:
		return !f.C
	case CondPOS:
		return !f.N
	case CondVC:
		return !f.V
	}
	return false
}

// FlagsFromAdd computes condition codes for a+b=r (64-bit).
func FlagsFromAdd(a, b, r uint64) Flags {
	return Flags{
		N: int64(r) < 0,
		Z: r == 0,
		V: (int64(a) >= 0) == (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0),
		C: r < a,
	}
}

// FlagsFromSub computes condition codes for a-b=r (64-bit). C is the borrow
// flag, i.e. set when a < b unsigned, matching SPARC subcc.
func FlagsFromSub(a, b, r uint64) Flags {
	return Flags{
		N: int64(r) < 0,
		Z: r == 0,
		V: (int64(a) >= 0) != (int64(b) >= 0) && (int64(r) >= 0) != (int64(a) >= 0),
		C: a < b,
	}
}

// FlagsFromLogic computes condition codes for a logical result.
func FlagsFromLogic(r uint64) Flags {
	return Flags{N: int64(r) < 0, Z: r == 0}
}
