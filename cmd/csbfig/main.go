// Command csbfig regenerates the paper's evaluation figures as text
// tables (or CSV).
//
// Usage:
//
//	csbfig -list
//	csbfig -fig 3a
//	csbfig -all
//	csbfig -all -j 8
//
// Figure sweeps fan their measurement points across -j worker goroutines
// (default NumCPU); every point is an isolated machine, so the output is
// byte-identical at any -j.
//
// Figure IDs follow the paper: 3a-3i (uncached store bandwidth on a
// multiplexed bus), 4a-4e (split bus), 5a/5b (locking vs CSB). Extension
// IDs: X1 (double-buffered CSB), X2/X2L (PIO vs DMA), X4 (R10000-style
// combining).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"csbsim"
)

var figureIDs = []string{
	"3a", "3b", "3c", "3d", "3e", "3f", "3g", "3h", "3i",
	"4a", "4b", "4c", "4d", "4e",
	"5a", "5b",
	"X1", "X2", "X2L", "X4", "X6", "X8",
}

func main() {
	fig := flag.String("fig", "", "figure ID to regenerate (see -list)")
	all := flag.Bool("all", false, "regenerate every paper figure (3a-5b)")
	list := flag.Bool("list", false, "list available figure IDs")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	bars := flag.Bool("bars", false, "render grouped ASCII bars instead of a table")
	workers := flag.Int("j", runtime.NumCPU(), "measurement points to run concurrently (1 = sequential)")
	flag.Parse()

	csbsim.SetFigureWorkers(*workers)

	switch {
	case *list:
		fmt.Println("available figures:")
		for _, id := range figureIDs {
			fmt.Printf("  %s\n", id)
		}
	case *all:
		results, err := csbsim.AllFigures()
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			emit(r, *csv, *bars)
		}
	case *fig != "":
		r, err := csbsim.Figure(*fig)
		if err != nil {
			fatal(err)
		}
		emit(r, *csv, *bars)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func emit(r csbsim.FigureResult, csv, bars bool) {
	switch {
	case csv:
		fmt.Print(csbsim.FormatFigureCSV(r))
	case bars:
		fmt.Print(csbsim.FormatFigureBars(r))
	default:
		fmt.Print(csbsim.FormatFigure(r))
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbfig:", err)
	os.Exit(1)
}
