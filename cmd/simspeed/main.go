// Command simspeed measures how fast the simulator itself runs: the
// single-thread tick rate (simulated CPU cycles per wall-clock second) on
// the paper's store-bandwidth workloads, and the wall-clock time to
// regenerate representative figure sweeps sequentially versus on the
// parallel sweep engine.
//
// The JSON it prints is the repo's sim-speed baseline; `make
// bench-simspeed` refreshes BENCH_simspeed.json with it. Methodology is
// described in EXPERIMENTS.md ("Simulator speed").
//
// Usage:
//
//	simspeed [-cycles N] [-j N] [-quick] [-skip-figures]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"csbsim/internal/bench"
	"csbsim/internal/mem"
)

// TickResult is the single-thread hot-loop measurement for one workload.
type TickResult struct {
	Workload string  `json:"workload"`
	Cycles   uint64  `json:"simulated_cycles"`
	Retired  uint64  `json:"retired_instructions"`
	Seconds  float64 `json:"wall_seconds"`
	KHz      float64 `json:"sim_khz"`  // simulated CPU cycles per wall second / 1000
	MIPS     float64 `json:"sim_mips"` // retired instructions per wall second / 1e6
}

// FigureResult is one figure-regeneration wall-clock measurement.
type FigureResult struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"wall_seconds"`
}

// Report is the full simspeed output.
type Report struct {
	GoVersion  string         `json:"go_version"`
	NumCPU     int            `json:"num_cpu"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Tick       []TickResult   `json:"tick"`
	Figures    []FigureResult `json:"figures,omitempty"`
	// SpeedupJ is wall-clock(sequential) / wall-clock(-j workers) summed
	// over the measured figures; 1.0 on a single-core machine.
	SpeedupJ float64 `json:"figure_speedup,omitempty"`
}

func main() {
	var (
		cycles      = flag.Uint64("cycles", 8_000_000, "simulated CPU cycles per tick-rate workload")
		workers     = flag.Int("j", runtime.NumCPU(), "worker count for the parallel figure timing")
		quick       = flag.Bool("quick", false, "smoke mode: few cycles, skip figure timing")
		skipFigures = flag.Bool("skip-figures", false, "skip the figure wall-clock comparison")
	)
	flag.Parse()
	if *quick {
		*cycles = 200_000
		*skipFigures = true
	}

	rep := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	for _, w := range []struct {
		name string
		csb  bool
	}{
		{"store-bandwidth-uncached", false},
		{"store-bandwidth-csb", true},
	} {
		tr, err := measureTickRate(w.name, w.csb, *cycles)
		if err != nil {
			fatal(err)
		}
		rep.Tick = append(rep.Tick, tr)
	}

	if !*skipFigures {
		seq, par, err := measureFigures(*workers)
		if err != nil {
			fatal(err)
		}
		rep.Figures = append(rep.Figures, seq...)
		rep.Figures = append(rep.Figures, par...)
		var seqTotal, parTotal float64
		for _, f := range seq {
			seqTotal += f.Seconds
		}
		for _, f := range par {
			parTotal += f.Seconds
		}
		if parTotal > 0 {
			rep.SpeedupJ = seqTotal / parTotal
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// measureTickRate runs the store-bandwidth microbenchmark loop for a fixed
// number of simulated cycles and reports the wall-clock tick rate. The
// transfer is sized so the program never halts inside the window: the
// measurement sees only the steady-state store loop.
func measureTickRate(name string, csb bool, cycles uint64) (TickResult, error) {
	p := bench.DefaultParams()
	if csb {
		p.Scheme = bench.SchemeCSB
	}
	m, err := p.Build()
	if err != nil {
		return TickResult{}, err
	}
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	// 64 MB of stores walked sequentially: more loop iterations than any
	// sane cycle budget reaches, so the measurement window sees only the
	// steady-state store loop (pages are allocated lazily as touched).
	m.MapRange(bench.IOBase, 1<<26, kind)
	src := bench.StoreBandwidthProgram(1<<26, p.LineSize, csb)
	prog, err := m.LoadSource("simspeed.s", src)
	if err != nil {
		return TickResult{}, err
	}
	m.WarmProgram(prog)

	start := time.Now()
	for i := uint64(0); i < cycles && !m.CPU.Halted(); i++ {
		m.Tick()
	}
	elapsed := time.Since(start).Seconds()
	if err := m.CPU.Err(); err != nil {
		return TickResult{}, fmt.Errorf("%s: %w", name, err)
	}

	s := m.Stats()
	tr := TickResult{
		Workload: name,
		Cycles:   s.Cycles,
		Retired:  s.CPU.Retired,
		Seconds:  elapsed,
	}
	if elapsed > 0 {
		tr.KHz = float64(s.Cycles) / elapsed / 1e3
		tr.MIPS = float64(s.CPU.Retired) / elapsed / 1e6
	}
	return tr, nil
}

// measureFigures times Figure3FrequencyRatio and Figure3BlockSize
// sequentially (1 worker) and on the parallel sweep engine (-j workers).
func measureFigures(workers int) (seq, par []FigureResult, err error) {
	figures := []struct {
		name string
		run  func() ([]bench.Result, error)
	}{
		{"Figure3FrequencyRatio", bench.Figure3FrequencyRatio},
		{"Figure3BlockSize", bench.Figure3BlockSize},
	}
	time1 := func(workers int) ([]FigureResult, error) {
		prev := bench.Workers()
		bench.SetWorkers(workers)
		defer bench.SetWorkers(prev)
		var out []FigureResult
		for _, f := range figures {
			start := time.Now()
			if _, err := f.run(); err != nil {
				return nil, err
			}
			out = append(out, FigureResult{
				Name:    f.name,
				Workers: workers,
				Seconds: time.Since(start).Seconds(),
			})
		}
		return out, nil
	}
	if seq, err = time1(1); err != nil {
		return nil, nil, err
	}
	if par, err = time1(workers); err != nil {
		return nil, nil, err
	}
	return seq, par, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simspeed:", err)
	os.Exit(1)
}
