// Command csbsim runs an SV9L assembly program on the simulated machine
// and reports execution statistics.
//
// Usage:
//
//	csbsim [flags] program.s
//
// The machine defaults to the paper's configuration (4-wide out-of-order
// core, 64-byte lines, 8-byte multiplexed bus at a 6:1 clock ratio,
// non-combining uncached buffer, 64-byte CSB). Flags adjust the bus model,
// clock ratio, combining scheme and address-space layout; -combining and
// -uncached map extra I/O ranges, e.g.:
//
//	csbsim -combining 0x40000000:64K prog.s
//
// Observability flags: -cpistack prints the stall-attribution stack,
// -perfetto writes a Chrome trace-event JSON loadable at ui.perfetto.dev,
// -metrics streams periodic machine samples (JSONL, or CSV for .csv
// files), -json emits the full statistics object, and -pipeview N prints
// an ASCII pipeline diagram of the last N instructions. -journeys FILE
// traces every uncached/CSB store and NIC descriptor through the memory
// system (per-hop cycle stamps, per-layer latency histograms) and writes
// a dump queryable with csbtrace; with -perfetto the journeys also land
// in the trace as a "memory system" track with flow arrows. -counters
// attaches the unified per-layer counter registry on its own. -telemetry
// ADDR serves live counter snapshots over HTTP while the run is going
// (/snapshot for the latest frame, /stream for SSE; watch with csbtop).
//
// Robustness flags: -faults attaches a deterministic fault injector
// ("default", or a key=value list such as "busnack=64,seed=3"),
// -fault-seed replays a specific fault schedule, and -watchdog N aborts
// with a full diagnostic dump if no instruction retires for N cycles:
//
//	csbsim -faults default -fault-seed 7 -watchdog 100000 prog.s
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"csbsim"
	"csbsim/internal/bus"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/rec"
	"csbsim/internal/obs/telemetry"
	"csbsim/internal/trace"
)

func main() {
	var (
		maxCycles = flag.Uint64("cycles", 100_000_000, "cycle limit")
		ratio     = flag.Int("ratio", 6, "CPU-to-bus clock frequency ratio")
		busModel  = flag.String("bus", "mux", "bus model: mux or split")
		width     = flag.Int("width", 8, "bus data width in bytes")
		turn      = flag.Int("turnaround", 0, "idle bus cycles after each transaction")
		ack       = flag.Int("ackdelay", 0, "min bus cycles between ordered transaction starts")
		line      = flag.Int("line", 64, "cache line / CSB burst size in bytes")
		block     = flag.Int("combine", 0, "uncached buffer combining block (0 = off)")
		comb      = flag.String("combining", "", "map combining space: addr:size (e.g. 0x40000000:64K)")
		unc       = flag.String("uncached", "", "map uncached space: addr:size")
		verbose   = flag.Bool("v", false, "print full statistics")
		traceRun  = flag.Bool("trace", false, "stream the retired-instruction trace to stderr")

		faults    = flag.String("faults", "", `inject deterministic faults: "default" or key=value list (keys: seed, `+strings.Join(csbsim.FaultSpecKeys(), ", ")+`)`)
		faultSeed = flag.Uint64("fault-seed", 0, "override the fault spec's PRNG seed (0 = keep the spec's)")
		watchdog  = flag.Uint64("watchdog", 0, "abort with a diagnostic dump after N cycles without a retired instruction (0 = off)")

		journeys      = flag.String("journeys", "", "trace store journeys (UB/CSB/bus/device hops) and write the dump to FILE (query with csbtrace)")
		journeyWindow = flag.Int("journey-window", 0, "per-kind count of recent journeys retained in the dump (0 = default 4096)")
		countersOn    = flag.Bool("counters", false, "attach the unified counter registry (implied by -journeys); counters land in -v and -json output")

		telemAddr = flag.String("telemetry", "", "serve live counter telemetry on ADDR (e.g. 127.0.0.1:8077); /snapshot for the latest frame, /stream for SSE — watch with csbtop")
		telemEach = flag.Uint64("telemetry-every", 10_000, "telemetry frame interval in CPU cycles")

		record  = flag.String("record", "", "write a flight-recorder recording to FILE (inspect with csbrec, replay with csbtop -replay)")
		recEach = flag.Uint64("record-every", 10_000, "recording window in CPU cycles")
		sloSpec = flag.String("slo", "", "SLO spec (string or @file) evaluated per recording window; breaches land in the event log and telemetry alerts")

		perfetto    = flag.String("perfetto", "", "write a Chrome trace-event JSON file (load at ui.perfetto.dev)")
		metrics     = flag.String("metrics", "", "write periodic machine metrics to FILE (JSONL, or CSV with a .csv extension)")
		metricsEach = flag.Uint64("metrics-every", 10_000, "metrics sample interval in CPU cycles")
		cpistack    = flag.Bool("cpistack", false, "print the CPI stall-attribution stack")
		jsonOut     = flag.Bool("json", false, "print full statistics as JSON on stdout")
		pipeview    = flag.Int("pipeview", 0, "print an ASCII pipeline diagram of the last N retired instructions")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbsim [flags] program.s\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := csbsim.DefaultConfig()
	cfg.Ratio = *ratio
	cfg.Bus.WidthBytes = *width
	cfg.Bus.Turnaround = *turn
	cfg.Bus.AckDelay = *ack
	switch *busModel {
	case "mux":
		cfg.Bus.Model = bus.Multiplexed
	case "split":
		cfg.Bus.Model = bus.Split
	default:
		fatal(fmt.Errorf("unknown bus model %q", *busModel))
	}
	cfg.Caches.L1I.LineSize = *line
	cfg.Caches.L1D.LineSize = *line
	cfg.Caches.L2.LineSize = *line
	cfg.CSB.LineSize = *line
	cfg.UB.MaxBurst = *line
	cfg.UB.BlockSize = *block

	m, err := csbsim.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}
	if err := mapRange(m, *comb, mem.KindCombining); err != nil {
		fatal(err)
	}
	if err := mapRange(m, *unc, mem.KindUncached); err != nil {
		fatal(err)
	}
	if *faults != "" {
		fcfg, err := csbsim.ParseFaultSpec(*faults)
		if err != nil {
			fatal(err)
		}
		if *faultSeed != 0 {
			fcfg.Seed = *faultSeed
		}
		if _, err := m.AttachFaults(fcfg); err != nil {
			fatal(err)
		}
	} else if *faultSeed != 0 {
		fatal(fmt.Errorf("-fault-seed needs -faults (try -faults default)"))
	}
	if *watchdog > 0 {
		if err := m.SetWatchdog(*watchdog); err != nil {
			fatal(err)
		}
	}
	if *countersOn {
		m.AttachCounters()
	}
	if *journeys != "" {
		jcfg := journey.DefaultConfig()
		if *journeyWindow > 0 {
			jcfg.Window = *journeyWindow
		}
		if _, err := m.AttachJourneys(jcfg); err != nil {
			fatal(err)
		}
	} else if *journeyWindow > 0 {
		fatal(fmt.Errorf("-journey-window needs -journeys"))
	}
	// The flight recorder rides the generic periodic hook next to
	// telemetry: one rollup window per -record-every cycles, flushed with
	// a footer after the run (even an aborted one). -slo without -record
	// still evaluates live, ring-only.
	var recorder *rec.Recorder
	var recFile *os.File
	if *record != "" || *sloSpec != "" {
		r, err := rec.New(rec.Config{Every: *recEach})
		if err != nil {
			fatal(err)
		}
		if err := r.AddSource("machine", m.AttachCounters()); err != nil {
			fatal(err)
		}
		if *sloSpec != "" {
			spec := *sloSpec
			if strings.HasPrefix(spec, "@") {
				data, err := os.ReadFile(spec[1:])
				if err != nil {
					fatal(err)
				}
				spec = string(data)
			}
			slo, err := rec.ParseSLO(spec)
			if err != nil {
				fatal(err)
			}
			if err := r.SetSLO(slo); err != nil {
				fatal(err)
			}
		}
		if *record != "" {
			f, err := os.Create(*record)
			if err != nil {
				fatal(err)
			}
			recFile = f
			if err := r.SetWriter(f); err != nil {
				fatal(err)
			}
		}
		r.Start(m.Cycle())
		if err := m.AttachPeriodic(*recEach, r.Roll); err != nil {
			fatal(err)
		}
		recorder = r
	}
	if *telemAddr != "" {
		streamer := telemetry.New()
		if err := streamer.AddNode("machine", m.AttachCounters()); err != nil {
			fatal(err)
		}
		if recorder != nil {
			r := recorder
			streamer.SetAlerts(func() []telemetry.Alert {
				active := r.ActiveAlerts()
				if len(active) == 0 {
					return nil
				}
				out := make([]telemetry.Alert, len(active))
				for i, a := range active {
					out[i] = telemetry.Alert{Rule: a.Rule, Series: a.Series, Since: a.Since, Value: a.Value}
				}
				return out
			})
		}
		if err := m.AttachPeriodic(*telemEach, streamer.Publish); err != nil {
			fatal(err)
		}
		addr, stopTelem, err := streamer.Serve(*telemAddr)
		if err != nil {
			fatal(err)
		}
		defer stopTelem()
		fmt.Fprintf(os.Stderr, "csbsim: telemetry on http://%s (snapshot: /snapshot, live: /stream)\n", addr)
	}

	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	if _, err := m.LoadSource(file, string(src)); err != nil {
		fatal(err)
	}
	if *traceRun {
		trace.New(os.Stderr, 0).Attach(m.CPU)
	}

	var exporter *obs.Perfetto
	if *perfetto != "" {
		exporter = obs.NewPerfetto()
		m.AttachPerfetto(exporter)
	}
	var metricsFile *os.File
	var metricsBuf *bufio.Writer
	var metricsW *obs.MetricsWriter
	if *metrics != "" {
		f, err := os.Create(*metrics)
		if err != nil {
			fatal(err)
		}
		metricsFile, metricsBuf = f, bufio.NewWriter(f)
		format := obs.FormatJSONL
		if strings.HasSuffix(*metrics, ".csv") {
			format = obs.FormatCSV
		}
		metricsW = obs.NewMetricsWriter(metricsBuf, format)
		if err := m.AttachMetrics(metricsW, *metricsEach); err != nil {
			fatal(err)
		}
	}
	var pipeRing []obs.InstEvent
	if *pipeview > 0 {
		n := *pipeview
		m.AttachInstEvents(func(e obs.InstEvent) {
			pipeRing = append(pipeRing, e)
			if len(pipeRing) > n {
				pipeRing = pipeRing[1:]
			}
		})
	}

	runErr := m.Run(*maxCycles)
	if out := m.Console(); out != "" {
		fmt.Print(out)
		if !strings.HasSuffix(out, "\n") {
			fmt.Println()
		}
	}
	m.FlushMetrics()
	if metricsFile != nil {
		if err := metricsBuf.Flush(); err != nil {
			fatal(err)
		}
		if err := metricsFile.Close(); err != nil {
			fatal(err)
		}
	}
	if exporter != nil {
		m.ExportJourneys() // no-op unless -journeys is also on
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		if _, err := exporter.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	// The journey dump is written even when the run aborted (watchdog,
	// device error): the partial journeys are exactly what a post-mortem
	// wants to query.
	if *journeys != "" {
		f, err := os.Create(*journeys)
		if err != nil {
			fatal(err)
		}
		if _, err := m.Journeys().WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	// The recording is closed even when the run aborted: the machine's
	// flushObs already fired the final periodic roll, this adds the footer.
	if recorder != nil {
		recorder.Flush(m.Cycle())
		if err := recorder.Err(); err != nil {
			fatal(err)
		}
		if recFile != nil {
			if err := recFile.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "csbsim: recorded %d windows, %d events -> %s\n",
				recorder.Windows(), recorder.EventCount(), *record)
		}
		for _, a := range recorder.ActiveAlerts() {
			fmt.Fprintf(os.Stderr, "csbsim: SLO BREACHED at end: %s rule=%q value=%g (since cycle %d)\n",
				a.Series, a.Rule, a.Value, a.Since)
		}
	}
	if runErr != nil {
		fatal(runErr)
	}

	s := m.Stats()
	switch {
	case *jsonOut:
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	case *verbose:
		fmt.Print(s.Report())
	default:
		fmt.Printf("halted after %d cycles (%d bus cycles), %d instructions, IPC %.2f\n",
			s.Cycles, s.BusCycles, s.CPU.Retired, s.CPU.IPC())
	}
	if *cpistack {
		fmt.Print(s.ReportCPI())
	}
	if *pipeview > 0 {
		fmt.Print(obs.FormatPipeline(pipeRing))
	}
}

// mapRange parses "addr:size" with optional K/M suffixes and maps it.
func mapRange(m *csbsim.Machine, spec string, kind mem.Kind) error {
	if spec == "" {
		return nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad range %q (want addr:size)", spec)
	}
	addr, err := parseNum(parts[0])
	if err != nil {
		return err
	}
	size, err := parseNum(parts[1])
	if err != nil {
		return err
	}
	m.MapRange(addr, size, kind)
	return nil
}

func parseNum(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), pickBase(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * mult, nil
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbsim:", err)
	os.Exit(1)
}
