package asm

import (
	"strings"
	"testing"

	"csbsim/internal/isa"
)

// decodeAll flattens the program and decodes every word as an instruction.
func decodeAll(t *testing.T, p *Program) []isa.Inst {
	t.Helper()
	_, data, err := p.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	if len(data)%4 != 0 {
		t.Fatalf("program size %d not word-aligned", len(data))
	}
	out := make([]isa.Inst, 0, len(data)/4)
	for i := 0; i < len(data); i += 4 {
		out = append(out, isa.Decode(ByteOrder.Uint32(data[i:])))
	}
	return out
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble("test.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestPaperListingAssembles(t *testing.T) {
	// The exact code fragment from section 3.2 of the paper, modulo the
	// elided "5 additional dword stores".
	src := `
.RETRY:
	set	8, %l4		! expected value
	! store 8 dwords in any order
	std	%f0, [%o1]
	std	%f10, [%o1+40]
	std	%f2, [%o1+16]
	std	%f4, [%o1+24]
	std	%f6, [%o1+32]
	std	%f8, [%o1+8]
	std	%f14, [%o1+56]
	std	%f12, [%o1+48]
	swap	[%o1], %l4	! conditional flush
	cmp	%l4, 8		! compare values
	bnz	.RETRY		! retry on failure
	halt
`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p)
	// set expands to 2 instructions; total = 2 + 8 std + swap + cmp + bnz + halt.
	if want := 2 + 8 + 4; len(insts) != want {
		t.Fatalf("got %d instructions, want %d", len(insts), want)
	}
	if insts[0].Op != isa.OpLUI || insts[1].Op != isa.OpORI {
		t.Errorf("set expansion = %v, %v", insts[0], insts[1])
	}
	std := insts[2]
	if std.Op != isa.OpSTF || std.Rs1 != 9 || std.Imm != 0 || std.Rd != 0 {
		t.Errorf("std %%f0,[%%o1] = %v", std)
	}
	sw := insts[10]
	if sw.Op != isa.OpSWAP || sw.Rd != 20 || sw.Rs1 != 9 {
		t.Errorf("swap = %v", sw)
	}
	cmp := insts[11]
	if cmp.Op != isa.OpSUBCCI || cmp.Rd != 0 || cmp.Rs1 != 20 || cmp.Imm != 8 {
		t.Errorf("cmp = %v", cmp)
	}
	bnz := insts[12]
	if bnz.Op != isa.OpBR || bnz.Cond != isa.CondNE {
		t.Errorf("bnz = %v", bnz)
	}
	// Branch target: .RETRY at origin; bnz is instruction 12 (addr
	// origin+48); offset = (0 - 52)/4 = -13.
	if bnz.Imm != -13 {
		t.Errorf("bnz offset = %d, want -13", bnz.Imm)
	}
}

func TestLabelsAndSymbols(t *testing.T) {
	src := `
	.org 0x2000
start:
	nop
loop:
	addi %g1, 1, %g1
	ba loop
	halt
`
	p := mustAssemble(t, src)
	if got, _ := p.Symbol("start"); got != 0x2000 {
		t.Errorf("start = %#x, want 0x2000", got)
	}
	if got, _ := p.Symbol("loop"); got != 0x2004 {
		t.Errorf("loop = %#x, want 0x2004", got)
	}
	insts := decodeAll(t, p)
	ba := insts[2]
	// ba at 0x2008, next = 0x200c, target 0x2004 → offset -2.
	if ba.Op != isa.OpBR || ba.Cond != isa.CondA || ba.Imm != -2 {
		t.Errorf("ba = %v, want offset -2", ba)
	}
}

func TestEquAndExpressions(t *testing.T) {
	src := `
	.equ NIC_BASE, 0x40000
	.equ DWORDS, 4
	set NIC_BASE+8, %o1
	stx %g1, [%o1 + DWORDS*0]  ! no multiply in exprs; this is just DWORDS...
`
	// Expression grammar has no '*', so rewrite without it.
	src = strings.ReplaceAll(src, "DWORDS*0", "DWORDS-4")
	p := mustAssemble(t, src)
	insts := decodeAll(t, p)
	// set NIC_BASE+8 = 0x40008: lui (0x40008>>13)=8, ori 8
	if insts[0].Op != isa.OpLUI || insts[0].Imm != 0x40008>>13 {
		t.Errorf("lui = %v", insts[0])
	}
	if insts[1].Op != isa.OpORI || insts[1].Imm != 0x40008&0x1fff {
		t.Errorf("ori = %v", insts[1])
	}
	if insts[2].Op != isa.OpSTX || insts[2].Imm != 0 {
		t.Errorf("stx = %v", insts[2])
	}
}

func TestSetExpansionValues(t *testing.T) {
	tests := []struct {
		val  string
		want uint64
	}{
		{"0", 0},
		{"8", 8},
		{"0x1fff", 0x1fff},
		{"0x2000", 0x2000},
		{"0x12345678", 0x12345678},
		{"0xffffffff", 0xffffffff},
		{"-1", 0xffffffffffffffff},
		{"-8192", 0xffffffffffffe000},
	}
	for _, tt := range tests {
		p := mustAssemble(t, "set "+tt.val+", %g1\nhalt\n")
		insts := decodeAll(t, p)
		// Emulate the two instructions.
		var g1 uint64
		for _, in := range insts[:2] {
			switch in.Op {
			case isa.OpLUI:
				g1 = uint64(in.Imm) << 13
			case isa.OpORI:
				g1 |= uint64(in.Imm)
			case isa.OpADDI:
				g1 = uint64(in.Imm)
			}
		}
		if g1 != tt.want {
			t.Errorf("set %s: register = %#x, want %#x", tt.val, g1, tt.want)
		}
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
	.org 0x1000
	.byte 1, 2, 0xff
	.half 0x1234
	.align 4
	.word 0xdeadbeef
	.dword 0x1122334455667788
	.double 1.5
	.space 3
	.asciz "ok"
`
	p := mustAssemble(t, src)
	base, data, err := p.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if base != 0x1000 {
		t.Fatalf("base = %#x", base)
	}
	want := []byte{1, 2, 0xff, 0x34, 0x12}
	for i, b := range want {
		if data[i] != b {
			t.Errorf("data[%d] = %#x, want %#x", i, data[i], b)
		}
	}
	// .align 4 pads to offset 8? 3+2=5 → align 4 pads 3 bytes to 8.
	if data[8] != 0xef || data[9] != 0xbe || data[10] != 0xad || data[11] != 0xde {
		t.Errorf(".word wrong: % x", data[8:12])
	}
	if data[12] != 0x88 || data[19] != 0x11 {
		t.Errorf(".dword wrong: % x", data[12:20])
	}
	// 1.5 = 0x3FF8000000000000 little-endian: last byte 0x3f.
	if data[20] != 0 || data[27] != 0x3f {
		t.Errorf(".double wrong: % x", data[20:28])
	}
	if string(data[31:34]) != "ok\x00" {
		t.Errorf(".asciz wrong: %q", data[31:34])
	}
}

func TestOrgCreatesChunks(t *testing.T) {
	src := `
	.org 0x1000
	nop
	.org 0x8000
	halt
`
	p := mustAssemble(t, src)
	if len(p.Chunks) != 2 {
		t.Fatalf("got %d chunks, want 2", len(p.Chunks))
	}
	if p.Chunks[0].Addr != 0x1000 || p.Chunks[1].Addr != 0x8000 {
		t.Errorf("chunk addrs: %#x, %#x", p.Chunks[0].Addr, p.Chunks[1].Addr)
	}
}

func TestEntryDirective(t *testing.T) {
	src := `
	.org 0x1000
data:	.word 0
	.entry main
main:	halt
`
	p := mustAssemble(t, src)
	if p.Entry != 0x1004 {
		t.Errorf("entry = %#x, want 0x1004", p.Entry)
	}
}

func TestEntryDefaultsToStart(t *testing.T) {
	p := mustAssemble(t, "nop\n_start: halt\n")
	if want := DefaultOrigin + 4; p.Entry != want {
		t.Errorf("entry = %#x, want %#x (_start)", p.Entry, want)
	}
	p2 := mustAssemble(t, "nop\nhalt\n")
	if p2.Entry != DefaultOrigin {
		t.Errorf("entry = %#x, want first instruction", p2.Entry)
	}
}

func TestPseudoInstructions(t *testing.T) {
	tests := []struct {
		src  string
		want isa.Inst
	}{
		{"mov %g1, %g2", isa.Inst{Op: isa.OpOR, Rd: 2, Rs1: 1}},
		{"mov 42, %g2", isa.Inst{Op: isa.OpADDI, Rd: 2, Imm: 42}},
		{"cmp %l4, 8", isa.Inst{Op: isa.OpSUBCCI, Rs1: 20, Imm: 8}},
		{"cmp %g1, %g2", isa.Inst{Op: isa.OpSUBCC, Rs1: 1, Rs2: 2}},
		{"tst %g3", isa.Inst{Op: isa.OpORCC, Rs1: 3}},
		{"clr %g4", isa.Inst{Op: isa.OpOR, Rd: 4}},
		{"inc %g5", isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 1}},
		{"inc 8, %g5", isa.Inst{Op: isa.OpADDI, Rd: 5, Rs1: 5, Imm: 8}},
		{"dec %g5", isa.Inst{Op: isa.OpSUBI, Rd: 5, Rs1: 5, Imm: 1}},
		{"neg %g1, %g2", isa.Inst{Op: isa.OpSUB, Rd: 2, Rs2: 1}},
		{"not %g1, %g2", isa.Inst{Op: isa.OpXORI, Rd: 2, Rs1: 1, Imm: -1}},
		{"ret", isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: isa.RegRA}},
		{"jmp %g7", isa.Inst{Op: isa.OpJALR, Rd: 0, Rs1: 7}},
		{"nop", isa.Inst{Op: isa.OpNOP}},
		{"membar", isa.Inst{Op: isa.OpMEMBAR}},
		{"rdpr %pid, %g1", isa.Inst{Op: isa.OpRDPR, Rd: 1, Imm: int64(isa.PRPID)}},
		{"wrpr %g1, %ivec", isa.Inst{Op: isa.OpWRPR, Rs1: 1, Imm: int64(isa.PRIVEC)}},
		{"trap 3", isa.Inst{Op: isa.OpTRAP, Imm: 3}},
		{"ldx [%o1+16], %g1", isa.Inst{Op: isa.OpLDX, Rd: 1, Rs1: 9, Imm: 16}},
		{"ldx [%o1-16], %g1", isa.Inst{Op: isa.OpLDX, Rd: 1, Rs1: 9, Imm: -16}},
		{"ld [%o1], %g1", isa.Inst{Op: isa.OpLDW, Rd: 1, Rs1: 9}},
		{"st %g1, [%o1]", isa.Inst{Op: isa.OpSTW, Rd: 1, Rs1: 9}},
		{"ldd [%o1], %f2", isa.Inst{Op: isa.OpLDF, Rd: 2, Rs1: 9}},
		{"add %g1, %g2, %g3", isa.Inst{Op: isa.OpADD, Rd: 3, Rs1: 1, Rs2: 2}},
		{"add %g1, 5, %g3", isa.Inst{Op: isa.OpADDI, Rd: 3, Rs1: 1, Imm: 5}},
		{"sll %g1, 3, %g3", isa.Inst{Op: isa.OpSLLI, Rd: 3, Rs1: 1, Imm: 3}},
		{"subcc %g1, %g2, %g0", isa.Inst{Op: isa.OpSUBCC, Rs1: 1, Rs2: 2}},
		{"faddd %f0, %f2, %f4", isa.Inst{Op: isa.OpFADD, Rd: 4, Rs1: 0, Rs2: 2}},
		{"fitod %g1, %f0", isa.Inst{Op: isa.OpFITOD, Rd: 0, Rs1: 1}},
		{"fdtoi %f2, %g1", isa.Inst{Op: isa.OpFDTOI, Rd: 1, Rs1: 2}},
		{"movr2f %g1, %f3", isa.Inst{Op: isa.OpMOVR2F, Rd: 3, Rs1: 1}},
		{"jalr %o7, 0, %g0", isa.Inst{Op: isa.OpJALR, Rs1: 15}},
	}
	for _, tt := range tests {
		p := mustAssemble(t, tt.src+"\n")
		insts := decodeAll(t, p)
		if insts[0] != tt.want {
			t.Errorf("%q = %+v, want %+v", tt.src, insts[0], tt.want)
		}
	}
}

func TestCallAndRet(t *testing.T) {
	src := `
	.org 0x1000
main:
	call func
	halt
func:
	ret
`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p)
	call := insts[0]
	// call at 0x1000, next 0x1004, func at 0x1008 → offset +1.
	if call.Op != isa.OpJAL || call.Rd != isa.RegRA || call.Imm != 1 {
		t.Errorf("call = %v", call)
	}
	ret := insts[2]
	if ret.Op != isa.OpJALR || ret.Rs1 != isa.RegRA || ret.Rd != 0 {
		t.Errorf("ret = %v", ret)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus %g1",
		"add %g1, %g2",          // missing operand
		"addi %g1, %g2, %g3",    // imm form needs constant
		"ldx %g1, [%o1]",        // operand order wrong
		"set 0x100000000, %g1",  // too large
		"stx %g1, [%o1+100000]", // displacement out of range
		"ba undefined_label",
		".equ X, Y", // forward ref in equ
		".align 3",  // not power of two
		"add %g1, %g2, %g3 extra",
		"label: label2:\nlabel: nop", // duplicate
		".org",
		"swap %l4, [%o1]", // reversed operands
	}
	for _, src := range bad {
		if _, err := Assemble("bad.s", src+"\n"); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		}
	}
}

func TestErrorsIncludeLineNumbers(t *testing.T) {
	_, err := Assemble("f.s", "nop\nnop\nbogus %g1\n")
	if err == nil || !strings.Contains(err.Error(), "f.s:3") {
		t.Errorf("error %v should mention f.s:3", err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
	add %g1, %g2, %g3
	addi %o0, -8, %o0
	stx %g5, [%o1+40]
	ldx [%o1], %g5
	swap [%o1], %l4
	stf %f12, [%o1+8]
	bnz -4
	membar
	lui 42, %g1
	jalr %o7, 0, %g0
	rdpr %pid, %g2
	wrpr %g2, %ivec
	trap 9
	halt
`
	p := mustAssemble(t, src)
	lines, err := p.Disassemble(DefaultOrigin, 14)
	if err != nil {
		t.Fatal(err)
	}
	// Re-assemble the disassembly text and compare bytes.
	var sb strings.Builder
	for _, l := range lines {
		parts := strings.SplitN(l, "  ", 3)
		sb.WriteString(parts[2] + "\n")
	}
	p2 := mustAssemble(t, sb.String())
	_, d1, _ := p.Bytes()
	_, d2, _ := p2.Bytes()
	if string(d1) != string(d2) {
		t.Errorf("round trip mismatch:\n% x\n% x\nsrc:\n%s", d1, d2, sb.String())
	}
}

func TestCommentStyles(t *testing.T) {
	src := "nop ! sparc comment\nnop # hash\nnop // slashes\nnop ; semi\n"
	p := mustAssemble(t, src)
	if n := len(decodeAll(t, p)); n != 4 {
		t.Errorf("got %d instructions, want 4", n)
	}
}

func TestProgramBytesOverlapDetected(t *testing.T) {
	src := `
	.org 0x1000
	.dword 0
	.org 0x1004
	.dword 0
`
	p := mustAssemble(t, src)
	if _, _, err := p.Bytes(); err == nil {
		t.Error("expected overlap error")
	}
}

func TestCharLiteral(t *testing.T) {
	p := mustAssemble(t, "mov 'A', %g1\n")
	insts := decodeAll(t, p)
	if insts[0].Imm != 65 {
		t.Errorf("char literal = %d, want 65", insts[0].Imm)
	}
}

func TestLocationCounter(t *testing.T) {
	src := `
	.org 0x2000
	nop
	ba .-4                 ! branch back to the nop: (0x2000 - 0x2008)/4 = -2
	halt
here:	.dword .
`
	p := mustAssemble(t, src)
	insts := decodeAll(t, p)
	ba := insts[1]
	if ba.Op != isa.OpBR || ba.Imm != -2 {
		t.Errorf("ba .-4 = %+v, want offset -2", ba)
	}
	// .dword . stores its own address.
	_, data, _ := p.Bytes()
	hereAddr, _ := p.Symbol("here")
	got := uint64(0)
	off := hereAddr - 0x2000
	for k := 7; k >= 0; k-- {
		got = got<<8 | uint64(data[off+uint64(k)])
	}
	if got != hereAddr {
		t.Errorf(".dword . = %#x, want %#x", got, hereAddr)
	}
	if _, ok := p.Symbol("."); ok {
		t.Error("location counter leaked into the symbol table")
	}
}

// FuzzAssemble: the assembler must never panic, whatever the input; it
// either produces a program or returns an error.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"nop\nhalt\n",
		"set 8, %l4\nstd %f0, [%o1]\nswap [%o1], %l4\ncmp %l4, 8\nbnz .RETRY\n",
		".org 0x1000\nx: .dword 1, 2, 3\n.align 8\n.asciz \"hi\"\n",
		"loop: subcc %g1, 1, %g1\nbnz loop\n",
		".equ A, 5\nadd %g1, A, %g2\n",
		"ba .-4\n",
		"! comment only\n",
		"\x00\x01\x02",
		"label:",
		"set 0x",
		"[%o1",
		"add %g1, %g2",
		"mov 'x, %g1",
		".double 1.5e",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz.s", src)
		if err == nil && p != nil {
			// A successful assembly must flatten without panicking too.
			_, _, _ = p.Bytes()
		}
	})
}
