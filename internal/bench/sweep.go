// Parallel sweep engine. Every paper figure is a sweep of independent
// (machine, scheme, transfer-size) points, each measured on a freshly
// built sim.Machine; machines share no mutable state (the only
// package-level variables in the simulator are immutable lookup tables),
// so the points can run on as many OS threads as the host offers. Sweep
// fans the points across a worker pool and assembles results in index
// order, so the output is byte-identical to a sequential run regardless
// of worker count or scheduling.
package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerCount is the package-wide default parallelism for Sweep calls
// that pass workers <= 0. Zero means "use GOMAXPROCS".
var workerCount atomic.Int32

// Workers reports the current default sweep parallelism.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the default sweep parallelism (the figure tool's -j
// flag lands here). n <= 0 restores the GOMAXPROCS default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int32(n))
}

// Sweep measures every point with fn, running up to `workers` calls
// concurrently (workers <= 0 means the package default, see SetWorkers).
// Results are returned in point order. fn must be safe for concurrent
// use; measurement functions that build a fresh Machine per call are.
//
// On error the sweep stops handing out new points, waits for in-flight
// measurements, and returns the error of the lowest-index failed point —
// the same error a sequential run would surface first.
func Sweep[P, R any](points []P, workers int, fn func(P) (R, error)) ([]R, error) {
	results := make([]R, len(points))
	if len(points) == 0 {
		return results, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > len(points) {
		workers = len(points)
	}
	if workers == 1 {
		// Sequential fast path: no goroutines, deterministic by
		// construction. This is also the reference path the parallel
		// assembly is tested against.
		for i, p := range points {
			r, err := fn(p)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next     atomic.Int64 // next unclaimed point index
		stop     atomic.Bool  // set on first error: stop claiming points
		mu       sync.Mutex
		errIdx   = -1 // lowest failed index seen so far
		firstErr error
		wg       sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(points) || stop.Load() {
					return
				}
				r, err := fn(points[i])
				if err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// seriesPoint addresses one (series, x) cell of a figure grid.
type seriesPoint struct{ si, xi int }

// sweepSeries evaluates an nSeries x nX measurement grid on the sweep
// pool and returns the filled Y vectors, one per series. fn receives the
// series and x indices and returns that cell's measurement.
func sweepSeries(nSeries, nX int, fn func(si, xi int) (float64, error)) ([][]float64, error) {
	points := make([]seriesPoint, 0, nSeries*nX)
	for si := 0; si < nSeries; si++ {
		for xi := 0; xi < nX; xi++ {
			points = append(points, seriesPoint{si, xi})
		}
	}
	ys, err := Sweep(points, 0, func(pt seriesPoint) (float64, error) {
		return fn(pt.si, pt.xi)
	})
	if err != nil {
		return nil, err
	}
	out := make([][]float64, nSeries)
	for si := range out {
		out[si] = make([]float64, nX)
	}
	for k, pt := range points {
		out[pt.si][pt.xi] = ys[k]
	}
	return out, nil
}
