package isa

import "fmt"

// SV9L binary encoding. Every instruction is one 32-bit word:
//
//	[31:24] opcode
//	R-format:   [23:19] rd   [18:14] rs1  [13:9] rs2   [8:0] zero
//	I-format:   [23:19] rd   [18:14] rs1  [13:0] imm14 (signed)
//	LUI:        [23:19] rd   [18:0]  imm19 (unsigned)
//	BR:         [23:20] cond [19:0]  off20 (signed, in instructions)
//	JAL:        [23:19] rd   [18:0]  off19 (signed, in instructions)
//
// Branch offsets are relative to the *next* instruction, i.e. target =
// PC + 4 + 4*offset.
const (
	// InstBytes is the size of one encoded instruction.
	InstBytes = 4

	immBits = 14
	luiBits = 19
	brBits  = 20
	jalBits = 19
	immMax  = 1<<(immBits-1) - 1
	immMin  = -(1 << (immBits - 1))
	luiMax  = 1<<luiBits - 1
	brMax   = 1<<(brBits-1) - 1
	brMin   = -(1 << (brBits - 1))
	jalMax  = 1<<(jalBits-1) - 1
	jalMin  = -(1 << (jalBits - 1))
)

// ImmFits reports whether v fits the signed 14-bit immediate field.
func ImmFits(v int64) bool { return v >= immMin && v <= immMax }

// Encode packs an instruction into its 32-bit word. It returns an error when
// a field is out of range.
func Encode(in Inst) (uint32, error) {
	if in.Op == OpInvalid || in.Op >= numOps {
		return 0, fmt.Errorf("encode: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
		return 0, fmt.Errorf("encode: register out of range in %s", in.Op.Name())
	}
	w := uint32(in.Op) << 24
	switch in.Op {
	case OpLUI:
		if in.Imm < 0 || in.Imm > luiMax {
			return 0, fmt.Errorf("encode: lui immediate %d out of range", in.Imm)
		}
		w |= uint32(in.Rd)<<19 | uint32(in.Imm)
	case OpBR:
		if in.Cond >= NumConds {
			return 0, fmt.Errorf("encode: invalid condition %d", in.Cond)
		}
		if in.Imm < brMin || in.Imm > brMax {
			return 0, fmt.Errorf("encode: branch offset %d out of range", in.Imm)
		}
		w |= uint32(in.Cond)<<20 | uint32(in.Imm)&(1<<brBits-1)
	case OpJAL:
		if in.Imm < jalMin || in.Imm > jalMax {
			return 0, fmt.Errorf("encode: jal offset %d out of range", in.Imm)
		}
		w |= uint32(in.Rd)<<19 | uint32(in.Imm)&(1<<jalBits-1)
	default:
		w |= uint32(in.Rd)<<19 | uint32(in.Rs1)<<14
		if in.Op.HasImm() {
			if !ImmFits(in.Imm) {
				return 0, fmt.Errorf("encode: immediate %d out of range in %s", in.Imm, in.Op.Name())
			}
			w |= uint32(in.Imm) & (1<<immBits - 1)
		} else {
			w |= uint32(in.Rs2) << 9
		}
	}
	return w, nil
}

// Decode unpacks a 32-bit word into an instruction. Unknown opcodes decode
// as OpInvalid rather than returning an error, so that the processor can
// raise an illegal-instruction trap.
func Decode(w uint32) Inst {
	op := Op(w >> 24)
	if op >= numOps {
		return Inst{Op: OpInvalid}
	}
	in := Inst{Op: op}
	switch op {
	case OpInvalid:
	case OpLUI:
		in.Rd = Reg(w >> 19 & 31)
		in.Imm = int64(w & (1<<luiBits - 1))
	case OpBR:
		in.Cond = Cond(w >> 20 & 15)
		in.Imm = signExtend(w&(1<<brBits-1), brBits)
	case OpJAL:
		in.Rd = Reg(w >> 19 & 31)
		in.Imm = signExtend(w&(1<<jalBits-1), jalBits)
	default:
		in.Rd = Reg(w >> 19 & 31)
		in.Rs1 = Reg(w >> 14 & 31)
		if op.HasImm() {
			in.Imm = signExtend(w&(1<<immBits-1), immBits)
		} else {
			in.Rs2 = Reg(w >> 9 & 31)
		}
	}
	return in
}

func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// MustEncode is Encode for known-valid instructions; it panics on error and
// is intended for tests and generated code.
func MustEncode(in Inst) uint32 {
	w, err := Encode(in)
	if err != nil {
		panic(err)
	}
	return w
}
