// The windowed conservative-lookahead engine: the classic conservative
// parallel-discrete-event scheme (gem5's multi-system KVM sync and CMB
// null messages are the references) applied to the cluster. The minimum
// link latency W is the lookahead: a packet pumped at cycle t cannot
// arrive anywhere before t+W, so every node can tick a whole window of W
// cycles on its own goroutine without observing an inbound packet the
// coordinator hasn't already delivered to its inbox. Between windows a
// single-threaded barrier routes the window's departures, replays the
// deferred tracer logs in node order, and publishes telemetry.
//
// Determinism: a node's window run touches only node-local state (its
// machine, its NIC, its inbox positions, its event log and outbox), and
// every shared-state mutation — routing, tracer stamps, counters reads —
// happens at the barrier in a fixed order: departures are routed in
// (pump cycle, node index, push order), trace logs replayed in node
// order. RunSequentialRef executes the identical window/barrier schedule
// inline, so the parallel run is byte-identical to the sequential
// reference by construction, not by luck.
package cluster

import "fmt"

// soloLookahead is the window used when the cluster has no links at all
// (a single node): there is nothing to synchronize with, so the window is
// just a large batching factor.
const soloLookahead = 4096

// lookahead computes the window W = min link latency, or an error when a
// link has zero latency (the windowed engine would have to barrier every
// cycle; use the lockstep engine instead).
func (c *Cluster) lookahead() (uint64, error) {
	w := uint64(0)
	for i := range c.links {
		for j := range c.links[i] {
			if l := c.links[i][j]; l != nil {
				if l.Latency == 0 {
					return 0, fmt.Errorf("cluster: link %s→%s has zero latency; the windowed engine needs ≥1 on every link (use the lockstep Run)",
						c.nodes[i].name, c.nodes[j].name)
				}
				if w == 0 || l.Latency < w {
					w = l.Latency
				}
			}
		}
	}
	if w == 0 {
		w = soloLookahead
	}
	return w, nil
}

// runWindow advances this node through the window (start, end]: per cycle
// it runs the node hook, ticks the machine (unless frozen), pumps freshly
// transmitted packets into the outbox and applies due inbound flights.
// Everything touched is node-local, so windows of different nodes run
// concurrently. A frozen, hook-less node skips the cycle loop and just
// catches its inbox up — stamps use the flights' own due cycles, so the
// fast-forward is exact.
//
//csb:hotpath
//csb:worker runs a whole lookahead window on the node's own goroutine
func (n *Node) runWindow(start, end uint64) {
	if n.frozen && !n.hookActive() {
		n.applyDue(end)
		return
	}
	for cyc := start + 1; cyc <= end; cyc++ {
		if n.hookActive() {
			if !n.hook(cyc) {
				n.hookDone = true
			}
		}
		if !n.frozen {
			n.M.Tick()
			if err := n.M.CPU.Err(); err != nil {
				n.err = err
				n.frozen = true
			} else if n.M.CPU.Halted() && !n.hookActive() && n.M.Settled() {
				// Halted with every engine quiet and no live hook: further
				// ticks are no-ops, stop paying for them.
				n.frozen = true
			}
		}
		n.pump(cyc)
		n.applyDue(cyc)
	}
}

// nodeWorkers is the persistent goroutine-per-node pool: each worker owns
// one node for the duration of a run and executes its windows. The
// start/done channel pairs give the barrier its happens-before edges: the
// coordinator's sends publish the routed inboxes to the workers, the
// workers' completions publish window state back to the coordinator.
type nodeWorkers struct {
	start []chan [2]uint64
	done  chan int
}

func (c *Cluster) startWorkers() *nodeWorkers {
	w := &nodeWorkers{
		start: make([]chan [2]uint64, len(c.nodes)),
		done:  make(chan int, len(c.nodes)),
	}
	for i, n := range c.nodes {
		ch := make(chan [2]uint64, 1)
		w.start[i] = ch
		//csb:worker the per-node goroutine body: one window per start-channel message
		go func(n *Node, ch chan [2]uint64, idx int) {
			for win := range ch {
				n.runWindow(win[0], win[1])
				w.done <- idx
			}
		}(n, ch, i)
	}
	return w
}

// run executes one window on every node concurrently and waits for all.
func (w *nodeWorkers) run(start, end uint64) {
	for _, ch := range w.start {
		ch <- [2]uint64{start, end}
	}
	for range w.start {
		<-w.done
	}
}

// stop retires the worker goroutines.
func (w *nodeWorkers) stop() {
	for _, ch := range w.start {
		close(ch)
	}
}

// runWindowed is the shared coordinator loop for the windowed engine.
func (c *Cluster) runWindowed(limit uint64, parallel, limitIsErr bool) error {
	w, err := c.lookahead()
	if err != nil {
		return err
	}
	var workers *nodeWorkers
	if parallel {
		workers = c.startWorkers()
		defer workers.stop()
	}
	c.startObs()
	horizon := c.cycle + limit
	for c.cycle < horizon {
		end := c.cycle + w
		if end > horizon {
			end = horizon
		}
		if workers != nil {
			workers.run(c.cycle, end)
		} else {
			for _, n := range c.nodes {
				n.runWindow(c.cycle, end)
			}
		}
		c.cycle = end
		// Barrier: all node goroutines are parked; shared state is ours.
		c.drainTraceLogs()
		c.routeAll()
		c.compactInboxes()
		c.maybeRoll()
		c.maybePublish()
		for _, n := range c.nodes {
			if n.err != nil {
				c.flushObs()
				return fmt.Errorf("cluster: node %s: %w", n.name, n.err)
			}
		}
		if err := c.checkWatchdog(); err != nil {
			return err // checkWatchdog flushed observability state
		}
		if c.settled() {
			c.flushObs()
			return nil
		}
	}
	if limitIsErr {
		c.flushObs()
		return fmt.Errorf("cluster: cycle limit %d reached (%s)", limit, c.haltSummary())
	}
	c.flushObs()
	return nil
}

// settled reports whether the whole cluster has gone quiet: every node is
// frozen (halted and drained, hooks retired) and every inbound flight has
// been delivered.
func (c *Cluster) settled() bool {
	for _, n := range c.nodes {
		if !n.frozen || n.hookActive() || n.enqPos != len(n.inbox) {
			return false
		}
	}
	return true
}

// RunParallel advances the cluster on the parallel windowed engine —
// goroutine per node, conservative lookahead barrier — until every node
// halts and drains (or maxCycles elapse, an error). Requires ≥1 cycle of
// latency on every link. The result (machine state, trace dumps, counter
// values) is byte-identical to RunSequentialRef with the same inputs.
func (c *Cluster) RunParallel(maxCycles uint64) error {
	return c.runWindowed(maxCycles, true, true)
}

// RunSequentialRef advances the cluster on the windowed engine with every
// window executed inline on one goroutine — the sequential reference the
// determinism guard compares RunParallel against.
func (c *Cluster) RunSequentialRef(maxCycles uint64) error {
	return c.runWindowed(maxCycles, false, true)
}

// RunFor advances the cluster on the windowed engine for a fixed horizon:
// reaching it is success, not an error — the shape serving experiments
// want, where server nodes never halt. Node faults still abort with an
// error. Observability state is flushed (and a final telemetry frame
// published) on every path.
func (c *Cluster) RunFor(cycles uint64, parallel bool) error {
	return c.runWindowed(cycles, parallel, false)
}
