package cache

import (
	"fmt"

	"csbsim/internal/bus"
	"csbsim/internal/obs/counters"
)

// HierConfig describes the whole cache hierarchy.
type HierConfig struct {
	L1I, L1D, L2 Config
	// L2Latency is the additional CPU-cycle cost of probing L2 after an
	// L1 miss.
	L2Latency int
	// MSHRs bounds concurrently outstanding line fills (lockup-free
	// caches, as in the paper's R10000-like core).
	MSHRs int
	// WriteBuffer is the depth of the retiring-store write buffer.
	WriteBuffer int
}

// DefaultHierConfig mirrors the paper's base machine: 32 KB split L1s,
// 256 KB unified L2, 64-byte lines.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1I:         Config{Size: 32 << 10, Assoc: 2, LineSize: 64, HitLatency: 1},
		L1D:         Config{Size: 32 << 10, Assoc: 2, LineSize: 64, HitLatency: 1},
		L2:          Config{Size: 256 << 10, Assoc: 4, LineSize: 64, HitLatency: 6},
		L2Latency:   6,
		MSHRs:       8,
		WriteBuffer: 8,
	}
}

// Validate reports configuration errors.
func (c HierConfig) Validate() error {
	for _, lv := range []Config{c.L1I, c.L1D, c.L2} {
		if err := lv.Validate(); err != nil {
			return err
		}
	}
	if c.L1I.LineSize != c.L2.LineSize || c.L1D.LineSize != c.L2.LineSize {
		return fmt.Errorf("cache: line sizes differ between levels")
	}
	if c.MSHRs <= 0 || c.WriteBuffer <= 0 {
		return fmt.Errorf("cache: MSHRs and WriteBuffer must be positive")
	}
	return nil
}

// HierStats aggregates hierarchy-level counters.
type HierStats struct {
	L1I, L1D, L2 Stats
	Fills        uint64
	Writebacks   uint64
	StoreStalls  uint64
}

type mshrState uint8

const (
	mshrProbeL2 mshrState = iota // waiting out the L2 lookup latency
	mshrNeedBus                  // L2 missed; waiting for the bus
	mshrOnBus                    // line fill in flight
)

type mshr struct {
	lineAddr  uint64
	fetch     bool
	state     mshrState
	countdown int
	l2Hit     bool
	callbacks []func()
}

// Hierarchy ties the three caches together and handles misses through the
// system bus.
type Hierarchy struct {
	cfg HierConfig
	l1i *Cache
	l1d *Cache
	l2  *Cache

	mshrs      []*mshr
	writebacks []uint64 // line addresses queued for bus writeback
	writeBuf   []uint64 // retiring cached stores (addresses)
	storeMiss  bool     // head of writeBuf is waiting on a fill

	// silentBuf is the reusable payload of Silent writeback transactions
	// (tag-only model: the bus only checks the length, never the bytes).
	silentBuf []byte

	stats HierStats
}

// NewHierarchy builds the cache hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		cfg: cfg, l1i: l1i, l1d: l1d, l2: l2,
		writeBuf:  make([]uint64, 0, cfg.WriteBuffer),
		silentBuf: make([]byte, cfg.L2.LineSize),
	}, nil
}

// LineSize returns the hierarchy's line size in bytes.
func (h *Hierarchy) LineSize() int { return h.cfg.L2.LineSize }

// Stats returns a snapshot of all counters.
func (h *Hierarchy) Stats() HierStats {
	s := h.stats
	s.L1I = h.l1i.Stats()
	s.L1D = h.l1d.Stats()
	s.L2 = h.l2.Stats()
	return s
}

// RegisterCounters registers the hierarchy's counters with the unified
// registry under prefix (e.g. "cache"), as read closures over the live
// stats — registration never perturbs simulation state.
func (h *Hierarchy) RegisterCounters(prefix string, r *counters.Registry) {
	for _, lvl := range []struct {
		name string
		c    *Cache
	}{{"l1i", h.l1i}, {"l1d", h.l1d}, {"l2", h.l2}} {
		c := lvl.c
		r.Counter(prefix+"/"+lvl.name+"/hits", func() uint64 { return c.stats.Hits })
		r.Counter(prefix+"/"+lvl.name+"/misses", func() uint64 { return c.stats.Misses })
		r.Counter(prefix+"/"+lvl.name+"/evictions", func() uint64 { return c.stats.Evictions })
	}
	r.Counter(prefix+"/fills", func() uint64 { return h.stats.Fills })
	r.Counter(prefix+"/writebacks", func() uint64 { return h.stats.Writebacks })
	r.Counter(prefix+"/store_stalls", func() uint64 { return h.stats.StoreStalls })
}

// L1D exposes the data cache (used by tests and warmup helpers).
func (h *Hierarchy) L1D() *Cache { return h.l1d }

// L1I exposes the instruction cache.
func (h *Hierarchy) L1I() *Cache { return h.l1i }

// L2 exposes the unified second-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

func (h *Hierarchy) line(addr uint64) uint64 {
	return addr &^ uint64(h.cfg.L2.LineSize-1)
}

// Load initiates a cached read (fetch selects L1I). On a hit it returns
// (latency, true, true). On a miss being handled it returns (0, false,
// true) and runs done once the line is resident in L1 (the caller then
// pays the hit latency). accepted=false means no MSHR was available; retry
// next cycle.
func (h *Hierarchy) Load(addr uint64, fetch bool, done func()) (latency int, hit, accepted bool) {
	l1 := h.l1d
	if fetch {
		l1 = h.l1i
	}
	if l1.Lookup(addr) {
		return l1.Config().HitLatency, true, true
	}
	if h.addMiss(addr, fetch, done) {
		return 0, false, true
	}
	return 0, false, false
}

// Present reports whether addr hits in the given L1 without disturbing
// LRU/statistics.
func (h *Hierarchy) Present(addr uint64, fetch bool) bool {
	if fetch {
		return h.l1i.Contains(addr)
	}
	return h.l1d.Contains(addr)
}

// MarkDirty marks the L1D line dirty (atomics and direct writes).
func (h *Hierarchy) MarkDirty(addr uint64) { h.l1d.SetDirty(addr) }

// addMiss attaches to an existing MSHR or allocates one.
func (h *Hierarchy) addMiss(addr uint64, fetch bool, done func()) bool {
	la := h.line(addr)
	for _, m := range h.mshrs {
		if m.lineAddr == la && m.fetch == fetch {
			if done != nil {
				m.callbacks = append(m.callbacks, done)
			}
			return true
		}
	}
	if len(h.mshrs) >= h.cfg.MSHRs {
		return false
	}
	m := &mshr{lineAddr: la, fetch: fetch, state: mshrProbeL2, countdown: h.cfg.L2Latency}
	if done != nil {
		m.callbacks = append(m.callbacks, done)
	}
	h.mshrs = append(h.mshrs, m)
	return true
}

// Store enqueues a retiring cached store. It returns false when the write
// buffer is full (retire stalls).
func (h *Hierarchy) Store(addr uint64) bool {
	if len(h.writeBuf) >= h.cfg.WriteBuffer {
		h.stats.StoreStalls++
		return false
	}
	h.writeBuf = append(h.writeBuf, addr)
	return true
}

// StoreBufferEmpty reports whether all retired cached stores have reached
// the cache (MEMBAR waits on this as well as the uncached buffer).
func (h *Hierarchy) StoreBufferEmpty() bool { return len(h.writeBuf) == 0 }

// WriteBufDepth returns the number of retired cached stores still waiting
// in the write buffer.
func (h *Hierarchy) WriteBufDepth() int { return len(h.writeBuf) }

// TickCPU advances CPU-clocked state: L2 probe countdowns and one write
// buffer drain per cycle.
func (h *Hierarchy) TickCPU() {
	for _, m := range h.mshrs {
		if m.state == mshrProbeL2 {
			if m.countdown > 0 {
				m.countdown--
				continue
			}
			if h.l2.Lookup(m.lineAddr) {
				// L2 hit: fill L1 immediately (transfer time is
				// folded into L2Latency).
				h.finishFill(m)
			} else {
				m.state = mshrNeedBus
			}
		}
	}
	h.drainWriteBuffer()
}

func (h *Hierarchy) drainWriteBuffer() {
	if len(h.writeBuf) == 0 || h.storeMiss {
		return
	}
	addr := h.writeBuf[0]
	if h.l1d.Lookup(addr) {
		h.l1d.SetDirty(addr)
		h.popWriteBuf()
		return
	}
	// Write-allocate: fetch the line, then complete the store.
	ok := h.addMiss(addr, false, func() {
		h.l1d.SetDirty(addr)
		h.popWriteBuf()
		h.storeMiss = false
	})
	if ok {
		h.storeMiss = true
	}
}

// popWriteBuf removes the head store by shifting in place, so the buffer
// keeps its backing array (≤ WriteBuffer entries) instead of re-slicing
// toward a reallocation.
func (h *Hierarchy) popWriteBuf() {
	copy(h.writeBuf, h.writeBuf[1:])
	h.writeBuf = h.writeBuf[:len(h.writeBuf)-1]
}

// finishFill installs the line in L2 (if it came from memory) and the
// requesting L1, queues any dirty victims for writeback, and fires the
// waiters.
func (h *Hierarchy) finishFill(m *mshr) {
	l1 := h.l1d
	if m.fetch {
		l1 = h.l1i
	}
	if victim, dirty, evicted := l1.Insert(m.lineAddr); evicted && dirty {
		// L1 dirty victim folds into L2 (no bus traffic).
		h.l2.SetDirty(victim)
	}
	h.stats.Fills++
	for _, cb := range m.callbacks {
		cb()
	}
	// Remove m from the MSHR list.
	for i, x := range h.mshrs {
		if x == m {
			h.mshrs = append(h.mshrs[:i], h.mshrs[i+1:]...)
			break
		}
	}
}

// TickBus lets the hierarchy issue at most one bus transaction: pending
// line fills take priority over writebacks.
func (h *Hierarchy) TickBus(b *bus.Bus) {
	for _, m := range h.mshrs {
		if m.state != mshrNeedBus {
			continue
		}
		mm := m
		txn := &bus.Txn{Addr: m.lineAddr, Size: h.LineSize(), Done: func(*bus.Txn) {
			if victim, dirty, evicted := h.l2.Insert(mm.lineAddr); evicted && dirty {
				h.writebacks = append(h.writebacks, victim)
			}
			h.finishFill(mm)
		}}
		if b.TryIssue(txn) {
			m.state = mshrOnBus
		}
		return
	}
	if len(h.writebacks) > 0 {
		wb := h.writebacks[0]
		// Tag-only model: the data is already in RAM, so the writeback
		// is a Silent (timing-only) transaction.
		txn := &bus.Txn{Addr: wb, Size: h.LineSize(), Write: true,
			Data: h.silentBuf, Silent: true}
		if b.TryIssue(txn) {
			copy(h.writebacks, h.writebacks[1:])
			h.writebacks = h.writebacks[:len(h.writebacks)-1]
			h.stats.Writebacks++
		}
	}
}

// NeedsBus reports whether the hierarchy has bus work pending (fills
// waiting for the bus or queued writebacks); Machine.Tick skips the
// TickBus call otherwise.
func (h *Hierarchy) NeedsBus() bool {
	return len(h.mshrs) != 0 || len(h.writebacks) != 0
}

// Idle reports whether no miss or writeback activity is pending.
func (h *Hierarchy) Idle() bool {
	return len(h.mshrs) == 0 && len(h.writebacks) == 0 && len(h.writeBuf) == 0
}

// Warm preloads the line containing addr into L1D and L2 (benchmark
// setup, e.g. making the lock hit in L1 for figure 5a).
func (h *Hierarchy) Warm(addr uint64, fetch bool) {
	h.l2.Preload(h.line(addr))
	if fetch {
		h.l1i.Preload(h.line(addr))
	} else {
		h.l1d.Preload(h.line(addr))
	}
}
