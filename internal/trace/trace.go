// Package trace records and formats retired-instruction traces from the
// simulated processor — the commit-order view of execution, which is what
// one debugs programs (and the simulator itself) against.
package trace

import (
	"fmt"
	"io"
	"strings"

	"csbsim/internal/cpu"
)

// Recorder collects retire events. It can stream them to a writer, keep
// the last N in a ring, or both. The zero value keeps nothing; use New.
type Recorder struct {
	w     io.Writer
	ring  []cpu.RetireEvent
	next  int
	count uint64
	full  bool
	// Filter, if set, drops events for which it returns false.
	Filter func(cpu.RetireEvent) bool
}

// New creates a recorder that streams formatted events to w (may be nil)
// and keeps the most recent ringSize events (0 keeps none).
func New(w io.Writer, ringSize int) *Recorder {
	r := &Recorder{w: w}
	if ringSize > 0 {
		r.ring = make([]cpu.RetireEvent, ringSize)
	}
	return r
}

// Attach hooks the recorder to a CPU. It registers alongside any other
// retire observers; recorders and exporters coexist.
func (r *Recorder) Attach(c *cpu.CPU) {
	c.AttachRetire(r.Record)
}

// Record consumes one event (usable directly as a retire observer).
func (r *Recorder) Record(ev cpu.RetireEvent) {
	if r.Filter != nil && !r.Filter(ev) {
		return
	}
	r.count++
	if r.ring != nil {
		r.ring[r.next] = ev
		r.next++
		if r.next == len(r.ring) {
			r.next = 0
			r.full = true
		}
	}
	if r.w != nil {
		fmt.Fprintln(r.w, FormatEvent(ev))
	}
}

// Count returns the number of recorded events.
func (r *Recorder) Count() uint64 { return r.count }

// Last returns up to n most recent events, oldest first.
func (r *Recorder) Last(n int) []cpu.RetireEvent {
	if r.ring == nil {
		return nil
	}
	var events []cpu.RetireEvent
	if r.full {
		events = append(events, r.ring[r.next:]...)
	}
	events = append(events, r.ring[:r.next]...)
	if n < len(events) {
		events = events[len(events)-n:]
	}
	out := make([]cpu.RetireEvent, len(events))
	copy(out, events)
	return out
}

// FormatEvent renders one event as a single trace line.
func FormatEvent(ev cpu.RetireEvent) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10d  %08x  %-28s", ev.Cycle, ev.PC, ev.Inst.String())
	if ev.IsMem {
		fmt.Fprintf(&b, "  [va %08x]", ev.Addr)
	}
	if ev.Inst.WritesIntReg() || ev.Inst.WritesFPReg() {
		fmt.Fprintf(&b, "  = %#x", ev.Result)
	}
	return b.String()
}

// Dump writes the ring buffer contents to w, oldest first.
func (r *Recorder) Dump(w io.Writer) {
	for _, ev := range r.Last(len(r.ring)) {
		fmt.Fprintln(w, FormatEvent(ev))
	}
}
