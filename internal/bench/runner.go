package bench

import (
	"fmt"
	"strings"

	"csbsim/internal/bus"
	"csbsim/internal/core"
	"csbsim/internal/mem"
	"csbsim/internal/sim"
)

// MachineParams selects the machine variation a measurement runs on.
type MachineParams struct {
	Ratio    int        // CPU:bus frequency ratio
	LineSize int        // cache line = CSB burst size
	Bus      bus.Config // bus model and overheads
	Scheme   Scheme
	// DoubleBufferedCSB enables the two-line CSB (ablation X1).
	DoubleBufferedCSB bool
	// SequentialCombining restricts the uncached buffer to R10000-style
	// strictly sequential combining (ablation X4).
	SequentialCombining bool
	// CoreWidth overrides the fetch/dispatch/retire width (0 keeps the
	// default 4-wide core). Used by X7: the paper reports lock overhead
	// is insensitive to 2-way vs 8-way superscalar width.
	CoreWidth int
}

// DefaultParams is the paper's base point: ratio 6, 64-byte lines, 8-byte
// multiplexed bus, no turnaround, no ack delay.
func DefaultParams() MachineParams {
	return MachineParams{
		Ratio:    6,
		LineSize: 64,
		Bus:      bus.Config{Model: bus.Multiplexed, WidthBytes: 8, ReadWait: 6, IOReadWait: 4},
		Scheme:   0,
	}
}

// Build constructs a machine for the given parameters.
func (p MachineParams) Build() (*sim.Machine, error) {
	cfg := sim.DefaultConfig()
	cfg.Ratio = p.Ratio
	cfg.Bus = p.Bus
	ls := p.LineSize
	cfg.Caches.L1I.LineSize = ls
	cfg.Caches.L1D.LineSize = ls
	cfg.Caches.L2.LineSize = ls
	cfg.CSB = core.Config{LineSize: ls, CheckAddress: true, DoubleBuffered: p.DoubleBufferedCSB}
	cfg.UB.MaxBurst = ls
	cfg.UB.Sequential = p.SequentialCombining
	switch {
	case p.Scheme == SchemeCSB:
		cfg.UB.BlockSize = 0
	default:
		cfg.UB.BlockSize = int(p.Scheme)
	}
	if p.CoreWidth > 0 {
		cfg.CPU.FetchWidth = p.CoreWidth
		cfg.CPU.DispatchWidth = p.CoreWidth
		cfg.CPU.RetireWidth = p.CoreWidth
		// Scale the issue bandwidth with the core, as the paper's 2- and
		// 8-way variants would.
		cfg.CPU.IntALUs = max(1, p.CoreWidth/2)
		cfg.CPU.FPUs = max(1, p.CoreWidth/2)
	}
	return sim.New(cfg)
}

// span tracks the bus-cycle window occupied by the measured I/O store
// traffic.
type span struct {
	first, last uint64
	bytes       uint64
	txns        uint64
	seen        bool
}

func (s *span) observe(t *bus.Txn) {
	if !t.Write || !t.IO {
		return
	}
	if !s.seen || t.Start < s.first {
		s.first = t.Start
		s.seen = true
	}
	if t.End > s.last {
		s.last = t.End
	}
	s.bytes += uint64(t.Size)
	s.txns++
}

func (s *span) cycles() uint64 {
	if !s.seen {
		return 0
	}
	return s.last - s.first + 1
}

// measureStoreStream is the shared store-bandwidth harness: build the
// machine, map the I/O window with the right memory kind, run the given
// store program to completion, drain the buffers, and return the
// effective bandwidth (useful bytes per bus cycle) over the observed
// I/O-write window.
func measureStoreStream(p MachineParams, name, src string, kind mem.Kind, totalBytes int) (float64, error) {
	m, err := p.Build()
	if err != nil {
		return 0, err
	}
	m.MapRange(IOBase, 1<<20, kind)
	prog, err := m.LoadSource(name, src)
	if err != nil {
		return 0, err
	}
	m.WarmProgram(prog)

	var sp span
	m.Bus.AttachObserver(sp.observe)

	if err := m.Run(50_000_000); err != nil {
		return 0, err
	}
	if err := m.Drain(1_000_000); err != nil {
		return 0, err
	}
	cyc := sp.cycles()
	if cyc == 0 {
		return 0, fmt.Errorf("bench: no I/O transactions observed")
	}
	return float64(totalBytes) / float64(cyc), nil
}

// MeasureBandwidth runs the store-bandwidth microbenchmark for one
// (transfer size, scheme, machine) point and returns the effective
// bandwidth in useful bytes per bus cycle.
func MeasureBandwidth(p MachineParams, totalBytes int) (float64, error) {
	csb := p.Scheme == SchemeCSB
	kind := mem.KindUncached
	if csb {
		kind = mem.KindCombining
	}
	src := StoreBandwidthProgram(totalBytes, p.LineSize, csb)
	return measureStoreStream(p, "bandwidth.s", src, kind, totalBytes)
}

// measureShuffledBandwidth is MeasureBandwidth with the shuffled-order
// workload (ablation X4).
func measureShuffledBandwidth(p MachineParams, totalBytes int) (float64, error) {
	src := ShuffledStoreProgram(totalBytes, p.LineSize)
	return measureStoreStream(p, "shuffled.s", src, mem.KindUncached, totalBytes)
}

// MeasureCSBIssueOverhead returns the CPU cycles a program needs to issue
// n back-to-back full-line CSB sequences and halt (not counting the
// background draining of the bursts). This is where the double-buffered
// CSB of §3.2 pays off: the single-entry design stalls each new sequence
// until the previous line has been handed to the system interface.
func MeasureCSBIssueOverhead(p MachineParams, lines int) (float64, error) {
	m, err := p.Build()
	if err != nil {
		return 0, err
	}
	m.MapRange(IOBase, 1<<20, mem.KindCombining)
	src := StoreBandwidthProgram(lines*p.LineSize, p.LineSize, true)
	// Measure issue overhead only: the core is free at halt; drop the
	// trailing barrier so the bursts drain in the background.
	src = strings.Replace(src, "\tmembar\n\thalt\n", "\thalt\n", 1)
	prog, err := m.LoadSource("issue.s", src)
	if err != nil {
		return 0, err
	}
	m.WarmProgram(prog)
	if err := m.Run(50_000_000); err != nil {
		return 0, err
	}
	cycles := float64(m.Cycle())
	if err := m.Drain(1_000_000); err != nil {
		return 0, err
	}
	return cycles, nil
}

// MeasureLockLatency runs the figure-5 microbenchmark: the CPU-cycle cost
// of one lock-access-unlock sequence (or CSB sequence) transferring
// nDwords doublewords, with the lock either warm in L1 or cold.
func MeasureLockLatency(p MachineParams, nDwords int, lockHit bool) (float64, error) {
	run := func(src string) (uint64, error) {
		m, err := p.Build()
		if err != nil {
			return 0, err
		}
		kind := mem.KindUncached
		if p.Scheme == SchemeCSB {
			kind = mem.KindCombining
		}
		m.MapRange(IOBase, 1<<20, kind)
		prog, err := m.LoadSource("lock.s", src)
		if err != nil {
			return 0, err
		}
		m.WarmProgram(prog)
		if !lockHit {
			// Evict the lock line so the swap misses (figure 5b). The
			// prologue data page was warmed wholesale; invalidate the
			// lock's line in both levels.
			lockAddr, ok := prog.Symbol("lock")
			if ok {
				m.Hier.L1D().Invalidate(lockAddr)
				m.Hier.L2().Invalidate(lockAddr)
			}
		}
		if err := m.Run(50_000_000); err != nil {
			return 0, err
		}
		return m.Cycle(), nil
	}
	var seq string
	if p.Scheme == SchemeCSB {
		seq = CSBSequenceProgram(nDwords)
	} else {
		seq = LockSequenceProgram(nDwords)
	}
	full, err := run(seq)
	if err != nil {
		return 0, err
	}
	base, err := run(LockPrologueProgram())
	if err != nil {
		return 0, err
	}
	if full < base {
		return 0, fmt.Errorf("bench: negative lock latency (%d < %d)", full, base)
	}
	return float64(full - base), nil
}
