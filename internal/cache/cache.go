// Package cache models the two-level cache hierarchy of the simulated
// machine (paper fig 1): split L1 instruction/data caches backed by a
// unified L2, with miss status holding registers (lockup-free misses), a
// retiring-store write buffer, and line fills/writebacks carried out as
// bus transactions.
//
// The caches are tag-only: data always lives in physical memory and the
// cache structures track presence, dirtiness and recency. This keeps one
// source of truth for data while preserving the timing behaviour the paper
// measures (the CSB experiments never depend on cache data contents, only
// on hit/miss latency and bus occupancy).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Size     int // total bytes
	Assoc    int // ways
	LineSize int // bytes
	// HitLatency in CPU cycles for a lookup that hits.
	HitLatency int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d invalid", c.LineSize)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d invalid", c.Assoc)
	}
	if c.Size <= 0 || c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines",
			c.Size, c.Assoc, c.LineSize)
	}
	sets := c.Size / (c.LineSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: %d sets not a power of two", sets)
	}
	if c.HitLatency < 0 {
		return fmt.Errorf("cache: negative hit latency")
	}
	return nil
}

// Stats counts per-cache activity.
type Stats struct {
	Hits, Misses, Evictions, Writebacks uint64
}

type line struct {
	tag   uint64
	used  uint64
	valid bool
	dirty bool
}

// Cache is one set-associative tag array with true-LRU replacement.
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64
	stats Stats
}

// New builds a cache level.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Size / (cfg.LineSize * cfg.Assoc)
	sets := make([][]line, nsets)
	for i := range sets {
		sets[i] = make([]line, cfg.Assoc)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr / uint64(c.cfg.LineSize)
	return lineAddr % uint64(len(c.sets)), lineAddr / uint64(len(c.sets))
}

// Lookup probes for the line containing addr, updating LRU state and hit
// or miss counters.
func (c *Cache) Lookup(addr uint64) bool {
	set, tag := c.index(addr)
	c.clock++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.used = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes without touching LRU or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Insert fills the line containing addr, returning the evicted victim's
// line address and dirtiness when a valid line had to be replaced.
func (c *Cache) Insert(addr uint64) (victimAddr uint64, victimDirty, evicted bool) {
	set, tag := c.index(addr)
	c.clock++
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.used = c.clock // already present (racing fills)
			return 0, false, false
		}
		if !l.valid {
			victim = i
			oldest = 0
		} else if l.used < oldest {
			victim = i
			oldest = l.used
		}
	}
	v := &c.sets[set][victim]
	if v.valid {
		evicted = true
		victimDirty = v.dirty
		victimAddr = (v.tag*uint64(len(c.sets)) + set) * uint64(c.cfg.LineSize)
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	*v = line{tag: tag, used: c.clock, valid: true}
	return victimAddr, victimDirty, evicted
}

// SetDirty marks the line containing addr dirty (no-op if absent).
func (c *Cache) SetDirty(addr uint64) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.dirty = true
			return
		}
	}
}

// Invalidate drops the line containing addr, reporting whether it was
// present and dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.valid = false
			return l.dirty, true
		}
	}
	return false, false
}

// Preload fills the line containing addr without statistics, for warming
// caches in tests and benchmarks.
func (c *Cache) Preload(addr uint64) {
	set, tag := c.index(addr)
	c.clock++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return
		}
	}
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			c.sets[set][i] = line{tag: tag, used: c.clock, valid: true}
			return
		}
	}
	c.sets[set][0] = line{tag: tag, used: c.clock, valid: true}
}
