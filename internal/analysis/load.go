package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module. Import
// resolution uses compiled export data from `go list -export`, so the
// loader needs the go command and the build cache but no network and no
// third-party machinery.
type Loader struct {
	dir     string // directory `go list` runs in (the module root)
	fset    *token.FileSet
	exports map[string]string // import path → export-data file
	targets []listedPkg       // the packages named by the patterns
	imp     types.Importer
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// NewLoader lists patterns (plus their dependency closure) under dir and
// prepares an importer over the resulting export data. Typical patterns:
// "./..." for the whole module. Additional explicit packages (e.g. "time")
// may be appended so fixtures can import them.
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	l := &Loader{
		dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
	}
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			l.targets = append(l.targets, p)
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Targets returns the import paths named by the loader's patterns, in
// `go list` order.
func (l *Loader) Targets() []string {
	out := make([]string, len(l.targets))
	for i, p := range l.targets {
		out[i] = p.ImportPath
	}
	return out
}

// LoadTarget parses and type-checks one of the listed target packages from
// source (tests excluded, matching `go list`'s GoFiles).
func (l *Loader) LoadTarget(path string) (*Package, error) {
	for _, t := range l.targets {
		if t.ImportPath != path {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		return l.check(path, t.Dir, files)
	}
	return nil, fmt.Errorf("package %q is not among the loaded targets", path)
}

// LoadDir parses and type-checks every .go file in dir as a package with
// the given import path. It is the fixture entry point: asPath controls
// what path-scoped analyzers (determinism) believe they are looking at.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(asPath, dir, files)
}

func (l *Loader) check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := types.Config{Importer: l.imp}
	tpkg, err := cfg.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// ModuleRoot walks up from dir to the nearest go.mod, the directory
// loaders should run in. Tests use it to anchor fixture loading.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
