# Build/test entry points; `make ci` is what .github/workflows/ci.yml runs.

GO ?= go
# Parallel workers for figure sweeps (cmd/csbfig -j); defaults to all cores.
J ?= 0

.PHONY: all build vet lint test race bench-smoke obsbench figures bench-simspeed bench-cluster zero-alloc faults faults-cluster journeys cluster-trace flight-recorder ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	$(GO) run ./cmd/csbvet ./...

# Project invariants: csbvet (pooling/determinism/hot-path plus the
# cluster engine's phase-discipline and clock-domain contracts over the
# Go sources) and csblint (SV9L protocol checks over the example
# programs; loadgen's generated server programs are linted by their own
# test suite). CI runs these plus a pinned staticcheck in a separate job.
lint: vet
	$(GO) run ./cmd/csblint examples/asm/*.s

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — catches bit-rot in the measurement
# harnesses without paying for full benchmark runs.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Re-measure the observability overhead baseline.
obsbench:
	$(GO) run ./cmd/obsbench > BENCH_observability.json

# Regenerate all paper figures, sweeping measurement points across $(J)
# workers (0 = one per core).
figures:
	$(GO) run ./cmd/csbfig -all -j $(J)

# Re-measure raw simulator speed (tick rate + parallel figure speedup).
bench-simspeed:
	$(GO) run ./cmd/simspeed > BENCH_simspeed.json

# Re-measure parallel cluster-engine scaling (1/2/4/8-node rates across
# GOMAXPROCS, plus the two-node parallel-vs-lockstep overhead) and gate
# the scheduler overhead at 5%.
bench-cluster:
	$(GO) run ./cmd/clusterspeed > BENCH_cluster.json
	$(GO) run ./cmd/clusterspeed -gate BENCH_cluster.json

# The steady-state zero-allocation check must run WITHOUT -race (the race
# detector's instrumentation allocates); the race target skips it via its
# build tag.
zero-alloc:
	$(GO) test -run TestTickSteadyStateZeroAlloc ./internal/bench/

# Journey-traced runs of the paired store workloads: dump the per-hop
# store journeys for the uncached and CSB paths, render both with
# csbtrace (totals, per-layer latency histograms, slowest-journey table),
# and write the CSB run's Perfetto trace with memory-system flow arrows.
# Artifacts land in out/.
journeys:
	mkdir -p out
	$(GO) run ./cmd/csbsim -uncached 0x40000000:64K \
		-journeys out/journeys_uncached.json examples/asm/uncached_stores.s
	$(GO) run ./cmd/csbsim -combining 0x40000000:64K \
		-journeys out/journeys_csb.json -perfetto out/trace_csb.json \
		examples/asm/csb_stores.s
	$(GO) run ./cmd/csbtrace -top 5 out/journeys_uncached.json
	$(GO) run ./cmd/csbtrace -top 5 out/journeys_csb.json

# Cross-node tracing: run a traced two-node ping-pong, write the merged
# distributed-trace dump plus the two-timeline Perfetto export to out/,
# then re-measure the observability overheads and gate both the
# cluster-trace and flight-recorder modes at 10%. CI uploads out/ as an
# artifact.
cluster-trace:
	mkdir -p out
	$(GO) run ./cmd/csbcluster -send csb -rounds 50 -wire 120 \
		-trace out/cluster_trace.json -perfetto out/cluster_trace_perfetto.json -v
	$(GO) run ./cmd/obsbench -reps 5 > out/BENCH_observability.json
	$(GO) run ./cmd/obsbench -gate out/BENCH_observability.json \
		-max-cluster-overhead 10 -max-recorder-overhead 10

# Flight recorder end to end: record a faulted serving run with the
# committed SLO spec riding along (live breaches land in the event log),
# print the summary, re-verify the spec offline with `csbrec check`, and
# export the counter-track Perfetto view. out/serve.rec is the replayable
# artifact (`csbtop -replay out/serve.rec`); CI uploads out/.
flight-recorder:
	mkdir -p out
	$(GO) run ./cmd/csbcluster -serve -nodes 4 -rate 0.33 -send csb -horizon 300000 \
		-timeout 6000 -retries 4 -wire-faults "wiredrop=8,outage=2,outagemax=300" \
		-record out/serve.rec -record-every 20000 -slo @specs/serving.slo
	$(GO) run ./cmd/csbrec summary out/serve.rec
	$(GO) run ./cmd/csbrec check -slo @specs/serving.slo out/serve.rec
	$(GO) run ./cmd/csbrec perfetto -o out/serve_rec_perfetto.json out/serve.rec

# Fault campaign: sweep injection seeds across the recovery guests and
# assert every run converges to the fault-free architectural state, then
# demonstrate the watchdog on a deliberately wedged guest.
faults:
	$(GO) run ./cmd/faultcampaign -seeds 25
	$(GO) run ./cmd/faultcampaign -wedge -watchdog 10000 > /dev/null

# Cluster fault campaign: wire faults (drop/duplicate/delay/outage) ×
# topologies × retry policies over the serving workload. Asserts engine
# determinism under faults, zero lost requests with retries at the
# calibrated rates, goodput ≥ 90% of the fault-free baseline, and exact
# accounting with retries disabled. Diagnostic dumps land in out/ on
# failure (CI uploads them).
faults-cluster:
	mkdir -p out
	$(GO) run ./cmd/faultcampaign -cluster -seeds 3 -topologies ring,star,mesh -outdir out -v

ci: lint build race zero-alloc bench-smoke faults faults-cluster
