// Machine-level observability wiring: this file connects the leaf obs
// package to the live machine — converting CPU retire events and bus
// transactions into obs events on a shared CPU-cycle timeline, and
// driving the periodic metrics sampler from Machine.Tick. All hooks are
// opt-in; an unattached machine pays only one nil check per tick.
package sim

import (
	"fmt"

	"csbsim/internal/bus"
	"csbsim/internal/cpu"
	"csbsim/internal/obs"
)

// AttachPerfetto wires a Perfetto exporter to the machine: every retired
// instruction becomes a lifecycle slice and every completed bus
// transaction a bus-track slice. Bus cycles are multiplied by the clock
// ratio so both tracks share the CPU-cycle timeline. Attach before
// running; call p.WriteTo afterwards to emit the trace.
func (m *Machine) AttachPerfetto(p *obs.Perfetto) {
	ratio := uint64(m.Cfg.Ratio)
	cache := make(disasmCache)
	m.CPU.AttachRetire(func(ev cpu.RetireEvent) {
		p.AddInst(instEvent(ev, cache))
	})
	m.Bus.AttachObserver(func(t *bus.Txn) {
		p.AddBus(obs.BusEvent{
			Start: t.Start * ratio,
			End:   (t.End + 1) * ratio,
			Addr:  t.Addr,
			Size:  t.Size,
			Write: t.Write,
			IO:    t.IO,
		})
	})
	m.perfetto = p
}

// AttachInstEvents registers fn on every retired instruction, already
// converted to the obs event type (for custom exporters and the text
// pipeline view).
func (m *Machine) AttachInstEvents(fn func(obs.InstEvent)) {
	cache := make(disasmCache)
	m.CPU.AttachRetire(func(ev cpu.RetireEvent) {
		fn(instEvent(ev, cache))
	})
}

// disasmCache memoizes disassembly per PC — rendering an instruction is
// ~10x the cost of recording its event, and loops retire the same static
// instruction many times. (The simulator has no self-modifying code, so
// PC → text is stable.)
type disasmCache map[uint64]string

func (d disasmCache) disasm(ev cpu.RetireEvent) string {
	if s, ok := d[ev.PC]; ok {
		return s
	}
	s := ev.Inst.String()
	d[ev.PC] = s
	return s
}

func instEvent(ev cpu.RetireEvent, cache disasmCache) obs.InstEvent {
	return obs.InstEvent{
		Seq:      ev.Seq,
		PC:       ev.PC,
		Disasm:   cache.disasm(ev),
		Fetch:    ev.FetchCycle,
		Dispatch: ev.DispatchCycle,
		Issue:    ev.IssueCycle,
		Complete: ev.CompleteCycle,
		Retire:   ev.Cycle,
		IsMem:    ev.IsMem,
		Addr:     ev.Addr,
	}
}

// metricsSampler holds the sampler cadence, sink, and the previous
// snapshot the deltas are computed against.
type metricsSampler struct {
	every uint64
	// countdown ticks down to the next sample (cheaper than a modulo in
	// Machine.Tick; samples land every `every` cycles after attach).
	countdown uint64
	w         *obs.MetricsWriter

	prevCycle     uint64
	prevBusCycles uint64
	prevBusBusy   uint64
	prevBusBytes  uint64
	prevRetired   uint64
	prevL1DMiss   uint64
	prevUncStores uint64
	prevCSBStores uint64
}

// AttachMetrics installs a periodic sampler that writes one obs.Sample to
// w every `every` CPU cycles (delta counters over the window plus
// instantaneous occupancies). If a Perfetto exporter is attached, samples
// also land in the trace as counter tracks. Call FlushMetrics after the
// run to emit the final partial window.
func (m *Machine) AttachMetrics(w *obs.MetricsWriter, every uint64) error {
	if every == 0 {
		return fmt.Errorf("sim: metrics sample interval must be positive")
	}
	if m.sampler != nil {
		return fmt.Errorf("sim: metrics sampler already attached")
	}
	m.sampler = &metricsSampler{every: every, countdown: every, w: w,
		prevCycle: m.cycle}
	return nil
}

// FlushMetrics emits a final sample covering the cycles since the last
// periodic one. It is a no-op without an attached sampler or when the
// last window is empty.
func (m *Machine) FlushMetrics() {
	if m.sampler == nil || m.cycle == m.sampler.prevCycle {
		return
	}
	m.sampleMetrics()
}

func (m *Machine) sampleMetrics() {
	s := m.sampler
	cs := m.CPU.Stats()
	hs := m.Hier.Stats()
	busBusy, busBytes := m.Bus.Activity()
	busCycle := m.Bus.Cycle()

	sample := obs.Sample{
		Cycle:          m.cycle,
		BusCycle:       busCycle,
		Retired:        cs.Retired - s.prevRetired,
		BusBytes:       busBytes - s.prevBusBytes,
		L1DMisses:      hs.L1D.Misses - s.prevL1DMiss,
		UncachedStores: cs.UncachedStores - s.prevUncStores,
		CSBStores:      cs.CSBStores - s.prevCSBStores,
		CSBOccupancy:   m.CSB.Occupancy(),
		CSBPending:     m.CSB.PendingLines(),
		UBDepth:        m.UB.Len(),
		WriteBufDepth:  m.Hier.WriteBufDepth(),
	}
	if window := m.cycle - s.prevCycle; window > 0 {
		sample.IPC = float64(sample.Retired) / float64(window)
	}
	if busWindow := busCycle - s.prevBusCycles; busWindow > 0 {
		sample.BusBusyPct = 100 * float64(busBusy-s.prevBusBusy) / float64(busWindow)
	}

	s.prevCycle = m.cycle
	s.prevBusCycles = busCycle
	s.prevBusBusy = busBusy
	s.prevBusBytes = busBytes
	s.prevRetired = cs.Retired
	s.prevL1DMiss = hs.L1D.Misses
	s.prevUncStores = cs.UncachedStores
	s.prevCSBStores = cs.CSBStores

	if s.w != nil {
		s.w.Write(sample)
	}
	if m.perfetto != nil {
		m.perfetto.AddCounters(sample)
	}
}
