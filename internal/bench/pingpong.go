package bench

import (
	"fmt"
	"strings"

	"csbsim/internal/cluster"
	"csbsim/internal/device"
	"csbsim/internal/mem"
)

// Experiment X8: ping-pong round-trip latency between two simulated nodes
// (the paper's §7 "realistic applications" next step, in the NOW/Memory
// Channel setting of §2). One 64-byte message bounces between the nodes
// `rounds` times; the send path is plain uncached PIO, CSB PIO, or DMA.
// The per-round gap between methods is pure software/bus overhead and
// stays constant as the wire latency grows — the Martin et al. point that
// applications are more sensitive to overhead than latency.

// sendBlock emits code sending one 64-byte message from the packet buffer
// slot at %o1 (payload in %f0) via the given method. Labels are suffixed
// to stay unique across expansions.
func sendBlock(b *strings.Builder, method SendMethod, tag string) {
	switch method {
	case SendPIO:
		for i := 0; i < 8; i++ {
			fmt.Fprintf(b, "\tstd %%f0, [%%o1+%d]\n", i*8)
		}
		b.WriteString("\tmembar\n")
	case SendCSB:
		fmt.Fprintf(b, "RETRY%s:\n\tset 8, %%l4\n", tag)
		for i := 0; i < 8; i++ {
			fmt.Fprintf(b, "\tstd %%f0, [%%o1+%d]\n", i*8)
		}
		b.WriteString("\tswap [%o1], %l4\n")
		fmt.Fprintf(b, "\tcmp %%l4, 8\n\tbnz RETRY%s\n", tag)
	case SendDMA:
		// Payload staged at 0x200000 by the prologue; one store fires it.
		b.WriteString("\tstx %g5, [%o0+8]\n") // RegDMA descriptor in %g5
		return
	}
	// Push the transmit descriptor (offset 0, length 64) prepared in %g4.
	b.WriteString("\tstx %g4, [%o0]\n")
}

// recvBlock emits code that waits for 8 RX words and drains them.
func recvBlock(b *strings.Builder, tag string) {
	fmt.Fprintf(b, "WAIT%s:\n", tag)
	fmt.Fprintf(b, "\tldx [%%o0+%d], %%g1\n", device.RegRxCount)
	fmt.Fprintf(b, "\tcmp %%g1, 8\n\tbl WAIT%s\n", tag)
	b.WriteString("\tmov 8, %g2\n")
	fmt.Fprintf(b, "DRAIN%s:\n", tag)
	fmt.Fprintf(b, "\tldx [%%o0+%d], %%g1\n", device.RegRxPop)
	fmt.Fprintf(b, "\tsubcc %%g2, 1, %%g2\n\tbnz DRAIN%s\n", tag)
}

func pingPongProlog(b *strings.Builder, method SendMethod) {
	fmt.Fprintf(b, "\tset %#x, %%o0\n", cluster.NICBase)
	fmt.Fprintf(b, "\tset %#x, %%o1\n", cluster.NICBase+device.PacketBufBase)
	b.WriteString("\tset 0xAB, %g1\n\tmovr2f %g1, %f0\n")
	// Descriptor for a 64-byte send from packet-buffer offset 0.
	b.WriteString("\tset 64, %g4\n\tsll %g4, 48, %g4\n")
	if method == SendDMA {
		// Stage the payload once and precompute the DMA descriptor.
		b.WriteString("\tset 0x200000, %o2\n")
		for i := 0; i < 8; i++ {
			fmt.Fprintf(b, "\tstd %%f0, [%%o2+%d]\n", i*8)
		}
		b.WriteString("\tmembar\n")
		b.WriteString("\tset 0x200000, %g5\n\tor %g4, %g5, %g5\n")
	}
}

// pingProgram sends first, then waits for the echo, `rounds` times.
func pingProgram(method SendMethod, rounds int) string {
	var b strings.Builder
	pingPongProlog(&b, method)
	fmt.Fprintf(&b, "\tset %d, %%g7\n", rounds)
	b.WriteString("round:\n")
	sendBlock(&b, method, "P")
	recvBlock(&b, "P")
	b.WriteString("\tsubcc %g7, 1, %g7\n\tbnz round\n\thalt\n")
	return b.String()
}

// pongProgram echoes every received message, `rounds` times.
func pongProgram(method SendMethod, rounds int) string {
	var b strings.Builder
	pingPongProlog(&b, method)
	fmt.Fprintf(&b, "\tset %d, %%g7\n", rounds)
	b.WriteString("round:\n")
	recvBlock(&b, "Q")
	sendBlock(&b, method, "Q")
	b.WriteString("\tsubcc %g7, 1, %g7\n\tbnz round\n\thalt\n")
	return b.String()
}

// PingPongPrograms returns the two node programs of the round-trip
// workload, for harnesses (cmd/obsbench) that need the raw sources.
func PingPongPrograms(method SendMethod, rounds int) (ping, pong string) {
	return pingProgram(method, rounds), pongProgram(method, rounds)
}

// MeasurePingPong returns the average round-trip time in CPU cycles for
// 64-byte messages bounced between two nodes.
func MeasurePingPong(method SendMethod, rounds int, wireLatency uint64) (float64, error) {
	cfg := cluster.DefaultConfig()
	cfg.WireLatency = wireLatency
	c, err := cluster.NewPair(cfg)
	if err != nil {
		return 0, err
	}
	for _, n := range c.Nodes() {
		n.MapIO(method == SendCSB)
		n.M.MapRange(0x200000, 1<<16, mem.KindCached)
	}
	pa, err := c.Node(0).M.LoadSource("ping.s", pingProgram(method, rounds))
	if err != nil {
		return 0, err
	}
	pb, err := c.Node(1).M.LoadSource("pong.s", pongProgram(method, rounds))
	if err != nil {
		return 0, err
	}
	c.Node(0).M.WarmProgram(pa)
	c.Node(1).M.WarmProgram(pb)
	if err := c.Run(100_000_000); err != nil {
		return 0, err
	}
	return float64(c.Cycle()) / float64(rounds), nil
}

// ExtensionPingPong regenerates X8: round-trip time vs wire latency for
// the three send methods. The vertical gaps are overhead; they persist
// unchanged as latency grows.
func ExtensionPingPong() (Result, error) {
	latencies := []uint64{0, 60, 120, 240, 480}
	const rounds = 30
	r := Result{
		ID:     "X8",
		Title:  "two-node ping-pong round trip, 64B messages",
		XLabel: "wire latency (CPU cycles each way)", YLabel: "round-trip CPU cycles",
		Notes: "cluster of two paper-default nodes; receive by polling the NIC RX queue",
	}
	for _, l := range latencies {
		r.X = append(r.X, fmt.Sprintf("%d", l))
	}
	methods := []SendMethod{SendPIO, SendCSB, SendDMA}
	ys, err := sweepSeries(len(methods), len(latencies), func(si, xi int) (float64, error) {
		rt, err := MeasurePingPong(methods[si], rounds, latencies[xi])
		if err != nil {
			return 0, fmt.Errorf("X8 %s wire=%d: %w", methods[si], latencies[xi], err)
		}
		return rt, nil
	})
	if err != nil {
		return r, err
	}
	for si, method := range methods {
		r.Series = append(r.Series, Series{Name: method.String(), Y: ys[si]})
	}
	return r, nil
}
