// Package telemetry streams live counter-registry snapshots and journey
// histogram deltas out of a running simulation over HTTP — the "watch the
// run while it is still going" half of the observability layer, feeding
// cmd/csbtop and any curl/browser consumer.
//
// The simulator stays single-threaded and deterministic: the sim loop
// calls Publish on a sim-cycle cadence (Machine.AttachPeriodic or
// Cluster.AttachTelemetry), which snapshots every registered node's
// counter registry into one JSON frame and hands it to the HTTP side.
// Serving happens on ordinary goroutines; a slow or absent consumer never
// stalls the simulation (frames are dropped per subscriber, with a drop
// counter in the next frame they do see). Nothing here reads the wall
// clock — frames are keyed by simulated cycles only, so attaching
// telemetry perturbs neither timing nor results.
//
// Endpoints:
//
//	/snapshot  — the most recent frame, as one JSON object
//	/stream    — server-sent events: one `data: <frame JSON>` per publish
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"

	"csbsim/internal/obs/counters"
)

// HistFrame is one histogram's state in a frame: the cumulative summary
// plus the number of new samples since the previous frame.
type HistFrame struct {
	counters.Summary
	Delta uint64 `json:"delta"`
}

// NodeFrame is one node's slice of a frame.
type NodeFrame struct {
	Counters   map[string]uint64    `json:"counters"`
	Histograms map[string]HistFrame `json:"histograms,omitempty"`
}

// Alert is one currently-breached SLO rule binding, mirrored from the
// flight recorder into frames so live dashboards show breach state
// without parsing the recording.
type Alert struct {
	Rule   string  `json:"rule"`
	Series string  `json:"series"`
	Since  uint64  `json:"since_cycle"`
	Value  float64 `json:"value"`
}

// Frame is one published telemetry snapshot.
type Frame struct {
	// Cycle is the simulated cycle the frame was taken at.
	Cycle uint64 `json:"cycle"`
	// Seq numbers frames from 1.
	Seq uint64 `json:"seq"`
	// Dropped counts frames this subscriber missed since the last one it
	// received (0 on /snapshot and for keeping-up streams).
	Dropped uint64                `json:"dropped,omitempty"`
	Nodes   map[string]*NodeFrame `json:"nodes"`
	// Alerts lists the SLO rules in breach when the frame was taken
	// (absent when no recorder/SLO is attached or nothing is breached).
	Alerts []Alert `json:"alerts,omitempty"`
}

// node is one registered snapshot source.
type node struct {
	name string
	reg  *counters.Registry
	// prevHist remembers each histogram's cumulative count at the last
	// publish, for the per-frame deltas.
	prevHist map[string]uint64
}

// subscriber is one connected /stream consumer.
type subscriber struct {
	ch      chan []byte
	dropped uint64
}

// Streamer owns the registered nodes and the subscriber set. Register
// nodes and attach the publish cadence before running; Serve (or an
// external http server via ServeHTTP) can start at any time.
type Streamer struct {
	nodes  []*node
	seq    uint64
	alerts func() []Alert

	mu   sync.Mutex // guards subs and last across sim and HTTP goroutines
	subs map[*subscriber]struct{}
	last []byte
}

// New creates an empty streamer.
func New() *Streamer {
	return &Streamer{subs: make(map[*subscriber]struct{})}
}

// AddNode registers a named counter registry to be snapshotted into every
// frame. Names must be unique.
func (s *Streamer) AddNode(name string, reg *counters.Registry) error {
	for _, n := range s.nodes {
		if n.name == name {
			return fmt.Errorf("telemetry: duplicate node %q", name)
		}
	}
	s.nodes = append(s.nodes, &node{name: name, reg: reg, prevHist: make(map[string]uint64)})
	return nil
}

// SetAlerts installs the active-alert source (the flight recorder's
// ActiveAlerts), called at every Publish from the sim loop. The last
// setter wins; pass nil to detach.
func (s *Streamer) SetAlerts(fn func() []Alert) { s.alerts = fn }

// Publish snapshots every node and broadcasts one frame. Called from the
// sim loop on a sim-cycle cadence; it never blocks on consumers.
//
//csb:barrier snapshots every node's registry; only safe between windows
func (s *Streamer) Publish(cycle uint64) {
	s.seq++
	f := Frame{Cycle: cycle, Seq: s.seq, Nodes: make(map[string]*NodeFrame, len(s.nodes))}
	if s.alerts != nil {
		f.Alerts = s.alerts()
	}
	for _, n := range s.nodes {
		snap := n.reg.Snapshot()
		nf := &NodeFrame{Counters: snap.Counters}
		if len(snap.Histograms) > 0 {
			nf.Histograms = make(map[string]HistFrame, len(snap.Histograms))
			for name, sum := range snap.Histograms {
				nf.Histograms[name] = HistFrame{Summary: sum, Delta: sum.Count - n.prevHist[name]}
				n.prevHist[name] = sum.Count
			}
		}
		f.Nodes[n.name] = nf
	}
	data, err := json.Marshal(f)
	if err != nil {
		return // a frame that cannot marshal is dropped, not fatal
	}
	s.mu.Lock()
	s.last = data
	for sub := range s.subs { //csb:orderless — each subscriber gets the same bytes
		sub.deliver(data, &f)
	}
	s.mu.Unlock()
}

// deliver hands a frame to one subscriber without blocking. A full
// channel drops the frame and surfaces the gap in the next delivered
// frame's Dropped field.
func (sub *subscriber) deliver(data []byte, f *Frame) {
	if sub.dropped > 0 {
		// Re-marshal with the gap count for this subscriber only.
		df := *f
		df.Dropped = sub.dropped
		if d, err := json.Marshal(df); err == nil {
			data = d
		}
	}
	select {
	case sub.ch <- data:
		sub.dropped = 0
	default:
		sub.dropped++
	}
}

// Snapshot returns the most recently published frame (nil before the
// first publish).
func (s *Streamer) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// ServeHTTP implements the /snapshot and /stream endpoints.
func (s *Streamer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/", "/snapshot":
		data := s.Snapshot()
		if data == nil {
			http.Error(w, "no frame published yet", http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		w.Write([]byte("\n"))
	case "/stream":
		s.serveStream(w, r)
	default:
		http.NotFound(w, r)
	}
}

// serveStream is the SSE endpoint: the latest frame immediately, then one
// event per publish until the client goes away.
func (s *Streamer) serveStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	sub := &subscriber{ch: make(chan []byte, 64)}
	s.mu.Lock()
	if s.last != nil {
		sub.ch <- s.last
	}
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
	}()

	for {
		select {
		case <-r.Context().Done():
			return
		case data := <-sub.ch:
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:0") serving the
// streamer's endpoints, and returns the bound address plus a stop
// function. The server runs on its own goroutine; the sim loop only ever
// touches Publish.
func (s *Streamer) Serve(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: s}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
