// Package sim assembles the full machine of the paper's evaluation: the
// out-of-order core, split L1 / unified L2 caches, the uncached buffer,
// the conditional store buffer, and a multiplexed or split system bus
// clocked at a configurable fraction of the core frequency, with main
// memory and memory-mapped devices behind it.
package sim

import (
	"bytes"
	"fmt"

	"csbsim/internal/asm"
	"csbsim/internal/bus"
	"csbsim/internal/cache"
	"csbsim/internal/core"
	"csbsim/internal/cpu"
	"csbsim/internal/fault"
	"csbsim/internal/isa"
	"csbsim/internal/mem"
	"csbsim/internal/obs"
	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
	"csbsim/internal/uncbuf"
)

// Config collects all machine parameters.
type Config struct {
	CPU    cpu.Config
	Caches cache.HierConfig
	Bus    bus.Config
	UB     uncbuf.Config
	CSB    core.Config
	// Ratio is the CPU-to-bus clock frequency ratio (6 in the paper's
	// main experiments: ~1 GHz core, >100 MHz bus).
	Ratio int
	// ContextSwitchCost models the kernel's save/restore path in CPU
	// cycles when the Go-level scheduler switches processes.
	ContextSwitchCost int
}

// DefaultConfig is the paper's base machine: 4-wide core, 64-byte lines,
// 8-byte multiplexed bus at ratio 6, non-combining uncached buffer, 64-byte
// single-entry CSB.
func DefaultConfig() Config {
	return Config{
		CPU:               cpu.DefaultConfig(),
		Caches:            cache.DefaultHierConfig(),
		Bus:               bus.DefaultConfig(),
		UB:                uncbuf.DefaultConfig(),
		CSB:               core.DefaultConfig(),
		Ratio:             6,
		ContextSwitchCost: 200,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	if err := c.Caches.Validate(); err != nil {
		return err
	}
	if err := c.Bus.Validate(); err != nil {
		return err
	}
	if err := c.UB.Validate(); err != nil {
		return err
	}
	if err := c.CSB.Validate(); err != nil {
		return err
	}
	if c.Ratio <= 0 {
		return fmt.Errorf("sim: ratio must be positive")
	}
	if c.ContextSwitchCost < 0 {
		return fmt.Errorf("sim: negative context switch cost")
	}
	return nil
}

// Device is a bus agent ticked once per bus cycle (e.g. a DMA engine).
type Device interface {
	// TickBus lets the device issue bus transactions.
	TickBus(b *bus.Bus)
	// Idle reports whether the device has no pending work.
	Idle() bool
}

// Stats is a full-machine snapshot.
type Stats struct {
	Cycles    uint64
	BusCycles uint64
	CPU       cpu.Stats
	Bus       bus.Stats
	Caches    cache.HierStats
	UB        uncbuf.Stats
	CSB       core.Stats
	TLBHits   uint64
	TLBMisses uint64
	// Faults holds the injection counters when a fault injector is
	// attached (nil otherwise, and omitted from JSON).
	Faults *fault.Stats `json:",omitempty"`
	// Counters holds the unified-registry snapshot — every layer's named
	// counters plus the journey tracer's latency histograms — when a
	// registry is attached (nil otherwise, and omitted from JSON).
	Counters *counters.Snapshot `json:",omitempty"`
}

// Machine is one simulated node.
type Machine struct {
	Cfg    Config
	RAM    *mem.Memory
	Router *mem.Router
	Bus    *bus.Bus
	Hier   *cache.Hierarchy
	UB     *uncbuf.Buffer
	CSB    *core.CSB
	CPU    *cpu.CPU

	devices []Device
	spaces  map[uint8]*mem.PageTable

	// Optional observability hooks (see obs.go); nil when unattached, so
	// an uninstrumented machine pays one nil check per tick.
	sampler  *metricsSampler
	perfetto *obs.Perfetto

	// Optional robustness hooks: the fault injector (fault.go), the
	// retire-progress watchdog (watchdog.go), and the Err providers of
	// registered devices, polled by Run so an out-of-range guest access
	// fails the run with a typed error instead of festering.
	faults     *fault.Injector
	wd         *watchdogState
	errDevices []func() error

	// Optional unified counter registry and store-journey tracer
	// (journey.go); nil when unattached.
	counters    *counters.Registry
	journeys    *journey.Tracer
	devCounters int // next device counter-prefix index

	// Optional periodic hooks (AttachPeriodic): each fires every
	// hook.every CPU cycles — the cadence driver for the telemetry
	// streamer and the flight recorder, which may run side by side. One
	// len check per tick when unattached.
	periodicHooks []periodicHook

	console bytes.Buffer
	cycle   uint64
	// busCountdown reaches 0 every Ratio-th CPU cycle (a decrement and
	// compare instead of a 64-bit modulo in the hottest loop).
	busCountdown int
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ram := mem.NewMemory()
	router := mem.NewRouter(ram)
	b, err := bus.New(cfg.Bus, router)
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(cfg.Caches)
	if err != nil {
		return nil, err
	}
	ub, err := uncbuf.New(cfg.UB)
	if err != nil {
		return nil, err
	}
	csb, err := core.New(cfg.CSB)
	if err != nil {
		return nil, err
	}
	c, err := cpu.New(cfg.CPU, hier, ub, csb, ram)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		Cfg: cfg, RAM: ram, Router: router, Bus: b,
		Hier: hier, UB: ub, CSB: csb, CPU: c,
		spaces:       make(map[uint8]*mem.PageTable),
		busCountdown: cfg.Ratio,
	}
	// Default address space for PID 0: created lazily by MapRange.
	pt := mem.NewPageTable()
	m.spaces[0] = pt
	c.SetPageTable(pt)
	c.PIDChanged = func(pid uint8) {
		if pt, ok := m.spaces[pid]; ok {
			c.SetPageTable(pt)
		}
	}
	c.TrapHook = m.defaultTrap
	return m, nil
}

// defaultTrap implements the console conventions used by the examples:
// trap 1 prints the byte in %o0, trap 2 prints %o0 as a decimal, trap 3
// prints %o0 as hex. Other codes are unhandled.
func (m *Machine) defaultTrap(code int64) bool {
	r := m.CPU.State().R
	switch code {
	case 1:
		m.console.WriteByte(byte(r[8]))
		return true
	case 2:
		fmt.Fprintf(&m.console, "%d", int64(r[8]))
		return true
	case 3:
		fmt.Fprintf(&m.console, "%#x", r[8])
		return true
	}
	return false
}

// Console returns everything the program printed via traps.
func (m *Machine) Console() string { return m.console.String() }

// AddressSpace returns (creating if needed) the page table for a PID.
func (m *Machine) AddressSpace(pid uint8) *mem.PageTable {
	pt, ok := m.spaces[pid]
	if !ok {
		pt = mem.NewPageTable()
		m.spaces[pid] = pt
	}
	return pt
}

// MapRange identity-maps [va, va+size) with the given kind into PID 0's
// address space (writable).
func (m *Machine) MapRange(va, size uint64, kind mem.Kind) {
	m.AddressSpace(0).MapRange(va, va, size, kind, true)
}

// AddDevice registers a bus-mastering device region.
func (m *Machine) AddDevice(base, size uint64, name string, t mem.Target, d Device) error {
	if err := m.Router.Register(base, size, name, t); err != nil {
		return err
	}
	if d != nil {
		m.devices = append(m.devices, d)
		m.wireDeviceFaults(d)
		if es, ok := d.(deviceErrSource); ok {
			m.errDevices = append(m.errDevices, es.Err)
		}
		if m.counters != nil {
			m.registerDeviceCounters(d)
		}
		if m.journeys != nil {
			wireDeviceJourneys(d, m.journeys)
		}
	}
	return nil
}

// Load writes an assembled program into RAM, identity-maps its span as
// cached memory, and resets the CPU to its entry point.
func (m *Machine) Load(p *asm.Program) error {
	base, data, err := p.Bytes()
	if err != nil {
		return err
	}
	m.RAM.Write(base, data)
	// Map a generous cached window around the program for stack and data
	// (programs that want uncached or combining space call MapRange).
	span := uint64(len(data)) + 1<<20
	m.MapRange(base&^uint64(mem.PageSize-1), span, mem.KindCached)
	m.CPU.Reset(p.Entry)
	return nil
}

// LoadSource assembles and loads source text.
func (m *Machine) LoadSource(name, src string) (*asm.Program, error) {
	p, err := asm.Assemble(name, src)
	if err != nil {
		return nil, err
	}
	if err := m.Load(p); err != nil {
		return nil, err
	}
	return p, nil
}

// WarmProgram preloads all of a program's lines into the instruction and
// data caches, so measurements start from a warm state (the bandwidth
// figures assume the bus is idle except for the measured traffic).
func (m *Machine) WarmProgram(p *asm.Program) {
	base, data, err := p.Bytes()
	if err != nil {
		return
	}
	m.WarmCode(base, uint64(len(data)))
	m.WarmData(base, uint64(len(data)))
}

// WarmCode preloads the I-cache lines covering [addr, addr+size).
func (m *Machine) WarmCode(addr, size uint64) {
	ls := uint64(m.Hier.LineSize())
	for a := addr &^ (ls - 1); a < addr+size; a += ls {
		m.Hier.Warm(a, true)
	}
}

// WarmData preloads the D-cache lines covering [addr, addr+size).
func (m *Machine) WarmData(addr, size uint64) {
	ls := uint64(m.Hier.LineSize())
	for a := addr &^ (ls - 1); a < addr+size; a += ls {
		m.Hier.Warm(a, false)
	}
}

// Cycle returns the elapsed CPU cycles.
func (m *Machine) Cycle() uint64 { return m.cycle }

// Tick advances the machine one CPU cycle (and the bus every Ratio
// cycles). Bus-agent priority per bus cycle: CSB line bursts first (the
// low-latency I/O path), then the uncached buffer, then cache miss
// traffic, then DMA devices.
//
//csb:hotpath
//csb:worker ticked from the node's goroutine inside cluster lookahead windows
func (m *Machine) Tick() {
	// The uncached buffer's send stage drains at core rate, before this
	// cycle's retiring stores arrive (so an idle system interface takes
	// the head entry immediately, bounding the combining window).
	m.UB.TickCPU()
	m.CPU.Tick()
	m.Hier.TickCPU()
	m.cycle++
	m.busCountdown--
	if m.busCountdown == 0 {
		m.busCountdown = m.Cfg.Ratio
		m.Bus.Tick()
		// Idle agents are skipped: each predicate is the same emptiness
		// check the agent's TickBus would bail out on. Devices are always
		// ticked — they stamp incoming work with their last-ticked cycle,
		// so skipping them while "idle" would skew those timestamps.
		if !m.CSB.Drained() {
			m.CSB.TickBus(m.Bus)
		}
		if m.UB.HasWork() {
			m.UB.TickBus(m.Bus)
		}
		if m.Hier.NeedsBus() {
			m.Hier.TickBus(m.Bus)
		}
		for _, d := range m.devices {
			d.TickBus(m.Bus)
		}
	}
	if s := m.sampler; s != nil {
		s.countdown--
		if s.countdown == 0 {
			s.countdown = s.every
			m.sampleMetrics()
		}
	}
	for i := range m.periodicHooks {
		h := &m.periodicHooks[i]
		h.countdown--
		if h.countdown == 0 {
			h.countdown = h.every
			h.fn(m.cycle)
		}
	}
}

// periodicHook is one AttachPeriodic registration.
type periodicHook struct {
	every     uint64
	countdown uint64
	fn        func(cycle uint64)
}

// AttachPeriodic installs a hook invoked every `every` CPU cycles with
// the current cycle — the cadence driver for the telemetry streamer
// (cmd/csbsim -telemetry) and the flight recorder (cmd/csbsim -record),
// which may be attached side by side with independent cadences. Hooks
// fire in attach order; attach before running. Every hook also fires
// once more from FlushObs so abort paths emit their final window.
func (m *Machine) AttachPeriodic(every uint64, fn func(cycle uint64)) error {
	if every == 0 {
		return fmt.Errorf("sim: periodic interval must be positive")
	}
	if fn == nil {
		return fmt.Errorf("sim: nil periodic hook")
	}
	m.periodicHooks = append(m.periodicHooks, periodicHook{every: every, countdown: every, fn: fn})
	return nil
}

// Run executes until HALT or maxCycles elapse. It returns an error if the
// CPU faulted, a device recorded an out-of-range guest access (a typed
// *device.AddrError reachable via errors.As), the armed watchdog detected
// retire-progress livelock (*WatchdogError with a diagnostic dump), or
// the cycle limit was hit.
func (m *Machine) Run(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		// Device errors are checked before the halt exit: a guest that
		// provokes one and then halts must still fail the run.
		if len(m.errDevices) != 0 {
			if err := m.deviceErr(); err != nil {
				// Abort paths flush buffered observability state (the
				// final partial metrics window) before surfacing the
				// error, so post-mortems see everything up to the abort.
				m.flushObs()
				return err
			}
		}
		if m.CPU.Halted() {
			return m.CPU.Err()
		}
		m.Tick()
		if w := m.wd; w != nil {
			w.countdown--
			if w.countdown == 0 {
				w.countdown = w.window
				if r := m.CPU.Retired(); r == w.lastRetired && !m.CPU.Halted() {
					m.flushObs()
					return m.watchdogTrip()
				} else {
					w.lastRetired = r
				}
			}
		}
	}
	if len(m.errDevices) != 0 {
		if err := m.deviceErr(); err != nil {
			m.flushObs()
			return err
		}
	}
	if m.CPU.Halted() {
		return m.CPU.Err()
	}
	return fmt.Errorf("sim: cycle limit %d reached at pc %#x", maxCycles, m.CPU.State().PC)
}

// Drain runs bus cycles until all buffers, devices and the bus are idle.
func (m *Machine) Drain(maxCycles uint64) error {
	for i := uint64(0); i < maxCycles; i++ {
		if m.Settled() {
			if len(m.errDevices) != 0 {
				return m.deviceErr()
			}
			return nil
		}
		m.Tick()
	}
	if m.wd != nil {
		// The watchdog is armed: attach the diagnostic dump, so a drain
		// that never settles is as debuggable as a retire livelock.
		return fmt.Errorf("sim: drain did not complete in %d cycles\n%s", maxCycles, m.DiagnosticDump())
	}
	return fmt.Errorf("sim: drain did not complete in %d cycles", maxCycles)
}

// Settled reports whether every asynchronous engine has gone quiet: the
// uncached buffer and CSB are empty, the bus and cache hierarchy are idle,
// and no device has pending work. A halted CPU plus Settled means further
// ticks cannot change architectural state — the cluster scheduler uses
// this to freeze finished nodes without dropping in-flight stores.
//
//csb:hotpath
func (m *Machine) Settled() bool {
	return m.UB.Empty() && m.CSB.Drained() && m.Bus.Idle() && m.Hier.Idle() && m.devicesIdle()
}

func (m *Machine) devicesIdle() bool {
	for _, d := range m.devices {
		if !d.Idle() {
			return false
		}
	}
	return true
}

// Stats snapshots all counters.
func (m *Machine) Stats() Stats {
	s := Stats{
		Cycles:    m.cycle,
		BusCycles: m.Bus.Cycle(),
		CPU:       m.CPU.Stats(),
		Bus:       m.Bus.Stats(),
		Caches:    m.Hier.Stats(),
		UB:        m.UB.Stats(),
		CSB:       m.CSB.Stats(),
		TLBHits:   m.CPU.TLB().Hits,
		TLBMisses: m.CPU.TLB().Misses,
	}
	if m.faults != nil {
		fs := m.faults.Stats()
		s.Faults = &fs
	}
	if m.counters != nil {
		s.Counters = m.counters.Snapshot()
	}
	return s
}

// Registers returns the committed integer register file (test helper).
func (m *Machine) Registers() [isa.NumRegs]uint64 { return m.CPU.State().R }

// Reg returns one committed integer register by assembler name ("%o0").
func (m *Machine) Reg(name string) (uint64, error) {
	r, err := isa.ParseReg(name)
	if err != nil {
		return 0, err
	}
	return m.CPU.State().R[r], nil
}
