// Command csbcluster runs a traced N-node cluster in one of three modes:
// the built-in two-node ping-pong workload (the paper's §7 "realistic
// application" step, extension X8), caller-supplied SV9L programs (one
// per node), or the open-loop serving workload (-serve): load-generator
// clients streaming requests at a configured offered rate against server
// nodes that reply via uncached PIO, CSB-batched stores or DMA.
//
// Usage:
//
//	csbcluster [flags]                  # built-in ping-pong (two nodes)
//	csbcluster [flags] a.s b.s [...]    # custom guests, one per node
//	csbcluster -serve [flags]           # open-loop serving workload
//
// Topology flags (-nodes, -topology, -bandwidth, -link-depth) shape the
// fabric; -engine picks the scheduler: "parallel" is the goroutine-per-
// node conservative-lookahead engine (requires ≥1 cycle of wire latency),
// "seq" its single-threaded reference, "lockstep" the classic
// cycle-by-cycle loop, and "auto" (default) parallel when the wire allows
// it. All three produce byte-identical results.
//
// Serving flags: -rate R offers R requests per 1000 cycles per client
// (open loop — arrivals never wait for completions), -dist picks the
// inter-arrival distribution, -servers the server node indices
// (comma-separated; every other node is a client), -horizon the run
// length, -req-words the request/reply size. The run reports per-client
// and merged throughput/latency quantiles as JSON.
//
// Observability flags wire up the PR 6 cross-node layer: -trace FILE
// writes the merged distributed-trace dump (per-packet spans with
// fifo_push → tx_start → wire_depart → wire_arrive → rx_enqueue →
// rx_drain stamps aligned onto the shared cluster timeline, plus per-hop
// latency histograms), -perfetto FILE writes the per-node-timeline Chrome
// trace (flow arrows across the wire; load at ui.perfetto.dev), and
// -telemetry ADDR serves live counter frames over HTTP/SSE for csbtop
// while the cluster runs.
//
// Examples:
//
//	csbcluster -send csb -rounds 50 -wire 120 -trace wire.json -v
//	csbcluster -serve -nodes 4 -topology star -rate 2 -send csb -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"csbsim/internal/bench"
	"csbsim/internal/cluster"
	"csbsim/internal/cluster/ctrace"
	"csbsim/internal/cluster/loadgen"
	"csbsim/internal/fault"
	"csbsim/internal/mem"
	"csbsim/internal/obs/counters"
	"csbsim/internal/obs/journey"
	"csbsim/internal/obs/rec"
	"csbsim/internal/obs/telemetry"
)

type options struct {
	rounds    int
	send      string
	nodes     int
	topology  string
	wire      uint64
	bandwidth uint64
	linkDepth int
	enqDelay  uint64
	engine    string
	maxCycles uint64

	serve    bool
	rate     float64
	dist     string
	seed     uint64
	servers  string
	horizon  uint64
	reqWords int

	wireFaults string
	nodeFaults string
	watchdog   uint64
	degrade    bool
	timeout    uint64
	retries    int
	backoff    uint64

	traceOut  string
	perfetto  string
	window    int
	telemAddr string
	telemEach uint64
	record    string
	recEvery  uint64
	slo       string

	verbose bool
	jsonOut bool
}

func main() {
	var o options
	flag.IntVar(&o.rounds, "rounds", 30, "ping-pong rounds (built-in workload)")
	flag.StringVar(&o.send, "send", "csb", "send/reply method: pio, csb or dma")
	flag.IntVar(&o.nodes, "nodes", 0, "node count (default 2, or 4 with -serve)")
	flag.StringVar(&o.topology, "topology", "", "fabric shape: mesh, ring or star (default mesh, or star with -serve)")
	flag.Uint64Var(&o.wire, "wire", 120, "wire latency in CPU cycles each way")
	flag.Uint64Var(&o.bandwidth, "bandwidth", 0, "link serialization cost in cycles per 8-byte word (0 = infinite)")
	flag.IntVar(&o.linkDepth, "link-depth", 0, "max packets in flight per link (0 = unbounded)")
	flag.Uint64Var(&o.enqDelay, "rx-delay", 0, "extra RX staging delay in CPU cycles (wire_arrive to rx_enqueue)")
	flag.StringVar(&o.engine, "engine", "auto", "scheduler: auto, parallel, seq or lockstep")
	flag.Uint64Var(&o.maxCycles, "cycles", 100_000_000, "cluster cycle limit")

	flag.BoolVar(&o.serve, "serve", false, "run the open-loop serving workload")
	flag.Float64Var(&o.rate, "rate", 1, "offered load per client in requests per 1000 cycles")
	flag.StringVar(&o.dist, "dist", "uniform", "inter-arrival distribution: uniform, bursty or heavytail")
	flag.Uint64Var(&o.seed, "seed", 1, "base PRNG seed (client i draws from seed+i)")
	flag.StringVar(&o.servers, "servers", "0", "comma-separated server node indices; all other nodes are clients")
	flag.Uint64Var(&o.horizon, "horizon", 300_000, "serving run length in cluster cycles")
	flag.IntVar(&o.reqWords, "req-words", 8, "request/reply payload in 8-byte words (1..8)")

	flag.StringVar(&o.wireFaults, "wire-faults", "", "wire fault spec, e.g. \"wire\" or \"wiredrop=16,outage=2\" (see internal/fault)")
	flag.StringVar(&o.nodeFaults, "node-faults", "", "machine fault spec attached to every node, or one node with an \"IDX:\" prefix (node i draws from seed+i)")
	flag.Uint64Var(&o.watchdog, "watchdog", 0, "cluster watchdog window in cycles (0 = off): abort when a node retires nothing for that long")
	flag.BoolVar(&o.degrade, "degrade", false, "with -watchdog, mark a wedged node down and keep serving instead of aborting")
	flag.Uint64Var(&o.timeout, "timeout", 0, "per-request deadline in cycles for -serve clients (0 = fire-and-forget)")
	flag.IntVar(&o.retries, "retries", 0, "retry budget per timed-out request (-serve; needs -timeout)")
	flag.Uint64Var(&o.backoff, "backoff", 0, "base retry backoff in cycles (0 = timeout/4)")

	flag.StringVar(&o.traceOut, "trace", "", "write the merged distributed-trace dump to FILE")
	flag.StringVar(&o.perfetto, "perfetto", "", "write the per-node-timeline Chrome trace to FILE (load at ui.perfetto.dev)")
	flag.IntVar(&o.window, "trace-window", 0, "count of recent wire spans retained in the dump (0 = default 4096)")
	flag.StringVar(&o.telemAddr, "telemetry", "", "serve live cluster telemetry on ADDR (/snapshot, /stream; watch with csbtop)")
	flag.Uint64Var(&o.telemEach, "telemetry-every", 10_000, "telemetry frame interval in cluster cycles")
	flag.StringVar(&o.record, "record", "", "write a flight-recorder recording to FILE (inspect with csbrec, replay with csbtop -replay)")
	flag.Uint64Var(&o.recEvery, "record-every", 10_000, "recording window in cluster cycles")
	flag.StringVar(&o.slo, "slo", "", "SLO spec (string or @file) evaluated per recording window; breaches land in the event log and telemetry alerts")

	flag.BoolVar(&o.verbose, "v", false, "print the wire-hop histograms")
	flag.BoolVar(&o.jsonOut, "json", false, "print the run summary as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbcluster [flags] [guest.s ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if err := run(&o, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "csbcluster:", err)
		os.Exit(1)
	}
}

func run(o *options, args []string) error {
	method, csb, err := parseSend(o.send)
	if err != nil {
		return err
	}
	if o.serve && len(args) != 0 {
		return fmt.Errorf("-serve and custom guests are mutually exclusive")
	}

	// Shape defaults depend on the mode: ping-pong wants the classic pair,
	// serving wants a star of clients around a server hub.
	cfg := cluster.DefaultConfig()
	cfg.WireLatency = o.wire
	cfg.Bandwidth = o.bandwidth
	cfg.LinkDepth = o.linkDepth
	cfg.RxEnqueueDelay = o.enqDelay
	cfg.Nodes = o.nodes
	if cfg.Nodes == 0 {
		if o.serve {
			cfg.Nodes = 4
		} else if len(args) > 0 {
			cfg.Nodes = len(args)
		} else {
			cfg.Nodes = 2
		}
	}
	if o.topology == "" {
		if o.serve {
			cfg.Topology = cluster.TopoStar
		}
	} else if cfg.Topology, err = cluster.ParseTopology(o.topology); err != nil {
		return err
	}
	if len(args) > 0 && len(args) != cfg.Nodes {
		return fmt.Errorf("%d guest programs for %d nodes", len(args), cfg.Nodes)
	}

	var c *cluster.Cluster
	if len(args) == 0 && !o.serve && cfg.Nodes == 2 {
		c, err = cluster.NewPair(cfg) // historical "a"/"b" trace names
	} else {
		c, err = cluster.New(cfg)
	}
	if err != nil {
		return err
	}

	// Telemetry implies tracing: csbtop's latency panel reads the ctrace
	// histograms out of the cluster frames.
	traced := o.traceOut != "" || o.perfetto != "" || o.verbose || o.jsonOut || o.telemAddr != ""
	if traced {
		tcfg := ctrace.DefaultConfig()
		if o.window > 0 {
			tcfg.Window = o.window
		}
		if _, err := c.AttachTrace(journey.DefaultConfig(), tcfg); err != nil {
			return err
		}
	}
	if o.telemAddr != "" {
		streamer := telemetry.New()
		if err := c.AttachTelemetry(streamer, o.telemEach); err != nil {
			return err
		}
		addr, stopTelem, err := streamer.Serve(o.telemAddr)
		if err != nil {
			return err
		}
		defer stopTelem()
		fmt.Fprintf(os.Stderr, "csbcluster: telemetry on http://%s (snapshot: /snapshot, live: /stream)\n", addr)
	}

	// Flight recorder: -record persists windows to disk, -slo alone still
	// evaluates live (ring-only) and feeds telemetry alerts. Series tables
	// seal at run start, so attaching before the workloads register their
	// counters is fine.
	if o.record != "" || o.slo != "" {
		r, err := rec.New(rec.Config{Every: o.recEvery})
		if err != nil {
			return err
		}
		if o.slo != "" {
			spec := o.slo
			if strings.HasPrefix(spec, "@") {
				data, err := os.ReadFile(spec[1:])
				if err != nil {
					return err
				}
				spec = string(data)
			}
			slo, err := rec.ParseSLO(spec)
			if err != nil {
				return err
			}
			if err := r.SetSLO(slo); err != nil {
				return err
			}
		}
		if o.record != "" {
			f, err := os.Create(o.record)
			if err != nil {
				return err
			}
			defer f.Close()
			if err := r.SetWriter(f); err != nil {
				return err
			}
		}
		if err := c.AttachRecorder(r); err != nil {
			return err
		}
	}

	// Fault injection and the cluster watchdog attach before anything runs.
	if o.wireFaults != "" {
		fcfg, err := fault.ParseSpec(o.wireFaults)
		if err != nil {
			return err
		}
		if _, err := c.AttachWireFaults(fcfg); err != nil {
			return err
		}
	}
	if o.nodeFaults != "" {
		spec, target := o.nodeFaults, -1
		// An "IDX:" prefix confines the faults to one node — the shape of a
		// failover experiment (wedge one server, watch clients re-steer).
		if k := strings.IndexByte(spec, ':'); k > 0 {
			if v, err := strconv.Atoi(spec[:k]); err == nil {
				if v < 0 || v >= c.NumNodes() {
					return fmt.Errorf("-node-faults node %d out of range (cluster has %d nodes)", v, c.NumNodes())
				}
				target, spec = v, spec[k+1:]
			}
		}
		fcfg, err := fault.ParseSpec(spec)
		if err != nil {
			return err
		}
		for i, n := range c.Nodes() {
			if target >= 0 && i != target {
				continue
			}
			ncfg := fcfg
			ncfg.Seed += uint64(i)
			if _, err := n.M.AttachFaults(ncfg); err != nil {
				return err
			}
		}
	}
	if o.watchdog > 0 {
		if err := c.SetWatchdog(o.watchdog, o.degrade); err != nil {
			return err
		}
	} else if o.degrade {
		return fmt.Errorf("-degrade needs a -watchdog window")
	}

	var gens []*loadgen.Generator
	var clients []int
	switch {
	case o.serve:
		if gens, clients, err = setupServe(c, o, method); err != nil {
			return err
		}
	case len(args) > 0:
		for i, path := range args {
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			n := c.Node(i)
			n.MapIO(csb)
			n.M.MapRange(0x200000, 1<<16, mem.KindCached)
			prog, err := n.M.LoadSource(path, string(src))
			if err != nil {
				return err
			}
			n.M.WarmProgram(prog)
		}
	default:
		for _, n := range c.Nodes() {
			n.MapIO(csb)
			n.M.MapRange(0x200000, 1<<16, mem.KindCached)
		}
		ping, pong := bench.PingPongPrograms(method, o.rounds)
		for i, src := range []string{ping, pong} {
			name := []string{"ping.s", "pong.s"}[i]
			prog, err := c.Node(i).M.LoadSource(name, src)
			if err != nil {
				return err
			}
			c.Node(i).M.WarmProgram(prog)
		}
	}

	runErr := runEngine(c, o)
	// Dumps are written even on an aborted run: the partial spans are
	// exactly what a post-mortem wants (the cluster has already flushed
	// the observability state).
	if o.traceOut != "" {
		if err := writeFile(o.traceOut, func(f *os.File) error {
			_, err := c.Trace().WriteTo(f)
			return err
		}); err != nil {
			return err
		}
	}
	if o.perfetto != "" {
		if err := writeFile(o.perfetto, func(f *os.File) error {
			_, err := c.Trace().WritePerfetto(f)
			return err
		}); err != nil {
			return err
		}
	}
	if r := c.Recorder(); r != nil {
		if err := r.Err(); err != nil {
			return err
		}
		if o.record != "" {
			fmt.Fprintf(os.Stderr, "csbcluster: recorded %d windows, %d events -> %s\n",
				r.Windows(), r.EventCount(), o.record)
		}
		for _, a := range r.ActiveAlerts() {
			fmt.Fprintf(os.Stderr, "csbcluster: SLO BREACHED at end: %s rule=%q value=%g (since cycle %d)\n",
				a.Series, a.Rule, a.Value, a.Since)
		}
	}
	if runErr != nil {
		return runErr
	}

	if o.serve {
		return reportServe(c, o, gens, clients)
	}
	switch {
	case o.jsonOut:
		out := struct {
			Cycles    uint64                      `json:"cycles"`
			Nodes     int                         `json:"nodes"`
			Rounds    int                         `json:"rounds,omitempty"`
			Started   uint64                      `json:"packets_started"`
			Completed uint64                      `json:"packets_completed"`
			Hops      map[string]counters.Summary `json:"hops"`
		}{Cycles: c.Cycle(), Nodes: c.NumNodes(), Started: c.Trace().Started(), Completed: c.Trace().Completed()}
		if len(args) == 0 {
			out.Rounds = o.rounds
		}
		out.Hops = c.Trace().BuildDump().Histograms
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	case o.verbose:
		fmt.Printf("cluster halted after %d cycles; %d packets crossed the wire (%d completed)\n",
			c.Cycle(), c.Trace().Started(), c.Trace().Completed())
		fmt.Print(c.Registry().Snapshot().Format())
	default:
		if traced {
			fmt.Printf("cluster halted after %d cycles; %d packets crossed the wire\n",
				c.Cycle(), c.Trace().Started())
		} else {
			fmt.Printf("cluster halted after %d cycles\n", c.Cycle())
		}
	}
	return nil
}

// setupServe loads server guests and attaches one load generator per
// client node.
func setupServe(c *cluster.Cluster, o *options, method bench.SendMethod) ([]*loadgen.Generator, []int, error) {
	dist, err := loadgen.ParseDist(o.dist)
	if err != nil {
		return nil, nil, err
	}
	if o.rate <= 0 {
		return nil, nil, fmt.Errorf("offered rate must be positive")
	}
	meanGap := uint64(1000 / o.rate)
	if meanGap == 0 {
		meanGap = 1
	}
	servers, err := parseServers(o.servers, c.NumNodes())
	if err != nil {
		return nil, nil, err
	}
	isServer := make(map[int]bool, len(servers))
	for _, s := range servers {
		isServer[s] = true
	}
	src, err := loadgen.ServerProgram(method, o.reqWords)
	if err != nil {
		return nil, nil, err
	}
	var gens []*loadgen.Generator
	var clients []int
	for i, n := range c.Nodes() {
		if isServer[i] {
			loadgen.ServerMapIO(n, method)
			prog, err := n.M.LoadSource("server.s", src)
			if err != nil {
				return nil, nil, err
			}
			n.M.WarmProgram(prog)
			continue
		}
		if _, err := n.M.LoadSource("client.s", "halt\n"); err != nil {
			return nil, nil, err
		}
		// Clients steer to the servers they can reach (all of them in a
		// mesh; in a star, the hub).
		var reach []int
		for _, s := range servers {
			if _, ok := c.Link(i, s); ok {
				reach = append(reach, s)
			}
		}
		g := loadgen.New(loadgen.Config{
			MeanGap:     meanGap,
			Dist:        dist,
			Seed:        o.seed + uint64(i),
			Words:       o.reqWords,
			Servers:     reach,
			Timeout:     o.timeout,
			MaxRetries:  o.retries,
			BackoffBase: o.backoff,
		})
		if err := g.Attach(c, i); err != nil {
			return nil, nil, err
		}
		gens = append(gens, g)
		clients = append(clients, i)
	}
	if len(gens) == 0 {
		return nil, nil, fmt.Errorf("no client nodes (every node is a server)")
	}
	return gens, clients, nil
}

// reportServe aggregates the generators' accounting into the serving-run
// summary.
func reportServe(c *cluster.Cluster, o *options, gens []*loadgen.Generator, clients []int) error {
	type clientOut struct {
		Node  string        `json:"node"`
		Stats loadgen.Stats `json:"stats"`
		P50   uint64        `json:"p50_cycles"`
		P99   uint64        `json:"p99_cycles"`
	}
	out := struct {
		Cycles     uint64           `json:"cycles"`
		Nodes      int              `json:"nodes"`
		Topology   string           `json:"topology"`
		Method     string           `json:"method"`
		Dist       string           `json:"dist"`
		RatePerK   float64          `json:"offered_per_kcycle_per_client"`
		Clients    []clientOut      `json:"clients"`
		Total      loadgen.Stats    `json:"total"`
		Latency    counters.Summary `json:"latency"`
		Throughput float64          `json:"completed_per_kcycle"`
		WireFaults *fault.Stats     `json:"wire_faults,omitempty"`
		NodesDown  []string         `json:"nodes_down,omitempty"`
	}{
		Cycles: c.Cycle(), Nodes: c.NumNodes(), Method: o.send, Dist: o.dist,
		RatePerK: o.rate,
	}
	if inj := c.WireFaults(); inj != nil {
		fs := inj.Stats()
		out.WireFaults = &fs
	}
	out.NodesDown = c.DownNodes()
	topo := o.topology
	if topo == "" {
		topo = cluster.TopoStar.String()
	}
	out.Topology = topo
	merged := counters.NewHistogram("latency")
	for k, g := range gens {
		st := g.Stats()
		out.Clients = append(out.Clients, clientOut{
			Node:  c.Node(clients[k]).Name(),
			Stats: st,
			P50:   g.Latency().Quantile(0.5),
			P99:   g.Latency().Quantile(0.99),
		})
		out.Total.Issued += st.Issued
		out.Total.Completed += st.Completed
		out.Total.Lost += st.Lost
		out.Total.Stray += st.Stray
		out.Total.Timeouts += st.Timeouts
		out.Total.Retries += st.Retries
		out.Total.DuplicateReplies += st.DuplicateReplies
		out.Total.Goodput += st.Goodput
		merged.Merge(g.Latency())
	}
	out.Latency = merged.Summary()
	if c.Cycle() > 0 {
		out.Throughput = 1000 * float64(out.Total.Completed) / float64(c.Cycle())
	}
	if o.jsonOut {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}
	fmt.Printf("serving run: %d cycles, %d clients → %d servers (%s, %s replies, %s arrivals)\n",
		out.Cycles, len(gens), c.NumNodes()-len(gens), out.Topology, o.send, o.dist)
	fmt.Printf("offered %.2f req/kcycle/client; issued %d, completed %d (%.2f/kcycle), lost %d, stray %d\n",
		o.rate, out.Total.Issued, out.Total.Completed, out.Throughput, out.Total.Lost, out.Total.Stray)
	if o.timeout > 0 {
		fmt.Printf("reliability: timeouts %d, retries %d, duplicate replies %d, goodput %d\n",
			out.Total.Timeouts, out.Total.Retries, out.Total.DuplicateReplies, out.Total.Goodput)
	}
	fmt.Printf("latency: p50=%d p95=%d p99=%d max=%d cycles\n",
		out.Latency.P50, out.Latency.P95, out.Latency.P99, out.Latency.Max)
	if fs := out.WireFaults; fs != nil {
		fmt.Printf("wire faults: seed=%d drops=%d dups=%d delays=%d (%d cycles) outages=%d (%d cycles)\n",
			fs.Seed, fs.WireDrops, fs.WireDups, fs.WireDelays, fs.WireDelayCycles,
			fs.OutageWindows, fs.OutageCycles)
	}
	if len(out.NodesDown) > 0 {
		fmt.Printf("degraded: nodes down: %s\n", strings.Join(out.NodesDown, ", "))
	}
	if o.verbose {
		fmt.Print(c.Registry().Snapshot().Format())
	}
	return nil
}

// runEngine dispatches to the scheduler the -engine flag picked.
func runEngine(c *cluster.Cluster, o *options) error {
	engine := o.engine
	if engine == "auto" {
		if o.wire == 0 {
			engine = "lockstep"
		} else {
			engine = "parallel"
		}
	}
	switch engine {
	case "lockstep":
		if o.serve {
			return fmt.Errorf("-serve needs the windowed engine (-engine parallel or seq)")
		}
		return c.Run(o.maxCycles)
	case "seq":
		if o.serve {
			return c.RunFor(o.horizon, false)
		}
		return c.RunSequentialRef(o.maxCycles)
	case "parallel":
		if o.serve {
			return c.RunFor(o.horizon, true)
		}
		return c.RunParallel(o.maxCycles)
	}
	return fmt.Errorf("unknown engine %q (want auto, parallel, seq or lockstep)", o.engine)
}

func parseServers(s string, nodes int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v >= nodes {
			return nil, fmt.Errorf("bad server node %q (cluster has %d nodes)", part, nodes)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no server nodes in %q", s)
	}
	return out, nil
}

func parseSend(s string) (bench.SendMethod, bool, error) {
	switch s {
	case "pio":
		return bench.SendPIO, false, nil
	case "csb":
		return bench.SendCSB, true, nil
	case "dma":
		return bench.SendDMA, false, nil
	}
	return 0, false, fmt.Errorf("unknown send method %q (want pio, csb or dma)", s)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
