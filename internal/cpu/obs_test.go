package cpu

import (
	"testing"

	"csbsim/internal/mem"
	"csbsim/internal/obs"
)

// TestAttachRetireMultiplexes verifies that multiple retire observers
// coexist — the property the old overwrite-only OnRetire field lacked.
func TestAttachRetireMultiplexes(t *testing.T) {
	r := newRig(t)
	var first, second []uint64
	var order []string
	r.c.AttachRetire(func(ev RetireEvent) {
		first = append(first, ev.Seq)
		order = append(order, "a")
	})
	r.c.AttachRetire(func(ev RetireEvent) {
		second = append(second, ev.Seq)
		order = append(order, "b")
	})
	r.load(t, `
	mov 1, %o0
	add %o0, 2, %o0
	halt
`)
	r.run(t, 10_000)
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("observer event counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("event %d: observers saw different seqs %d vs %d", i, first[i], second[i])
		}
	}
	if order[0] != "a" || order[1] != "b" {
		t.Errorf("observers ran out of attachment order: %v", order[:2])
	}
}

// TestRetireEventLifecycleStamps checks the per-stage cycle stamps are
// monotone and present on ordinary ALU instructions.
func TestRetireEventLifecycleStamps(t *testing.T) {
	r := newRig(t)
	var events []RetireEvent
	r.c.AttachRetire(func(ev RetireEvent) { events = append(events, ev) })
	r.load(t, `
	mov 5, %o0
	add %o0, %o0, %o1
	sub %o1, 3, %o2
	halt
`)
	r.run(t, 10_000)
	if len(events) < 3 {
		t.Fatalf("only %d retire events", len(events))
	}
	for _, ev := range events {
		if ev.FetchCycle == 0 {
			t.Errorf("seq %d (%s): no fetch stamp", ev.Seq, ev.Inst.String())
		}
		if ev.DispatchCycle < ev.FetchCycle {
			t.Errorf("seq %d: dispatch %d before fetch %d", ev.Seq, ev.DispatchCycle, ev.FetchCycle)
		}
		if ev.Cycle < ev.DispatchCycle {
			t.Errorf("seq %d: retire %d before dispatch %d", ev.Seq, ev.Cycle, ev.DispatchCycle)
		}
		if ev.IssueCycle != 0 && ev.CompleteCycle != 0 && ev.CompleteCycle < ev.IssueCycle {
			t.Errorf("seq %d: complete %d before issue %d", ev.Seq, ev.CompleteCycle, ev.IssueCycle)
		}
	}
	// The add issues through an ALU: it must carry issue and complete.
	add := events[1]
	if add.IssueCycle == 0 || add.CompleteCycle == 0 {
		t.Errorf("ALU op missing issue/complete stamps: %+v", add)
	}
}

// cpiInvariant fails the test unless the CPI stack buckets sum exactly to
// the cycle counter.
func cpiInvariant(t *testing.T, s Stats) {
	t.Helper()
	if total := s.CPI.Total(); total != s.Cycles {
		t.Errorf("CPI stack sums to %d, cycles = %d\n%s", total, s.Cycles, s.CPI.Format())
	}
}

func TestCPIStackInvariantALU(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	mov 10, %g2
loop:
	add %o0, 1, %o0
	subcc %g2, 1, %g2
	bnz loop
	halt
`)
	r.run(t, 100_000)
	s := r.c.Stats()
	cpiInvariant(t, s)
	if s.CPI[obs.CauseCommit] == 0 {
		t.Error("no commit cycles recorded")
	}
}

func TestCPIStackChargesUncachedDrain(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, 1<<16, mem.KindUncached, true)
	r.load(t, `
	set 0x40000000, %o1
	mov 16, %g2
loop:
	stx %g1, [%o1]
	add %o1, 8, %o1
	subcc %g2, 1, %g2
	bnz loop
	membar
	halt
`)
	r.run(t, 100_000)
	s := r.c.Stats()
	cpiInvariant(t, s)
	if s.CPI[obs.CauseUncached]+s.CPI[obs.CauseBusArb] == 0 {
		t.Errorf("uncached store loop charged no drain/bus cycles:\n%s", s.CPI.Format())
	}
}

func TestCPIStackChargesCSB(t *testing.T) {
	r := newRig(t)
	r.pt.MapRange(0x4000_0000, 0x4000_0000, 1<<16, mem.KindCombining, true)
	r.load(t, `
	set 0x40000000, %o1
	mov 4, %g2
loop:
	mov 8, %l4
	stx %g1, [%o1]
	stx %g1, [%o1+8]
	stx %g1, [%o1+16]
	stx %g1, [%o1+24]
	stx %g1, [%o1+32]
	stx %g1, [%o1+40]
	stx %g1, [%o1+48]
	stx %g1, [%o1+56]
	swap [%o1], %l4
	subcc %g2, 1, %g2
	bnz loop
	halt
`)
	r.run(t, 100_000)
	s := r.c.Stats()
	cpiInvariant(t, s)
	if s.CPI[obs.CauseCSB] == 0 {
		t.Errorf("CSB store/flush loop charged no csb-busy cycles:\n%s", s.CPI.Format())
	}
}

// TestCPIStackInvariantHoldsMidRun samples the invariant every cycle, not
// just at halt — the charge-exactly-one-bucket-per-tick property.
func TestCPIStackInvariantHoldsMidRun(t *testing.T) {
	r := newRig(t)
	r.load(t, `
	mov 100, %g2
loop:
	add %o0, 1, %o0
	subcc %g2, 1, %g2
	bnz loop
	halt
`)
	for i := 0; i < 10_000 && !r.c.Halted(); i++ {
		r.tick()
		s := r.c.Stats()
		if s.CPI.Total() != s.Cycles {
			t.Fatalf("cycle %d: stack sums to %d, cycles %d", i, s.CPI.Total(), s.Cycles)
		}
	}
}
