package asm

import "csbsim/internal/isa"

// regToImmOp maps register-form ALU opcodes to their immediate forms, used
// when the second source operand is an expression.
var regToImmOp = map[isa.Op]isa.Op{
	isa.OpADD: isa.OpADDI, isa.OpSUB: isa.OpSUBI, isa.OpAND: isa.OpANDI,
	isa.OpOR: isa.OpORI, isa.OpXOR: isa.OpXORI, isa.OpSLL: isa.OpSLLI,
	isa.OpSRL: isa.OpSRLI, isa.OpSRA: isa.OpSRAI, isa.OpMUL: isa.OpMULI,
	isa.OpADDCC: isa.OpADDCCI, isa.OpSUBCC: isa.OpSUBCCI,
	isa.OpANDCC: isa.OpANDCCI, isa.OpORCC: isa.OpORCCI,
}

// memAliases maps SPARC-style load/store aliases to SV9L opcodes.
var memAliases = map[string]isa.Op{
	"ld": isa.OpLDW, "st": isa.OpSTW,
	"ldd": isa.OpLDF, "std": isa.OpSTF, // doubleword FP, as in the paper's listing
	"ldub": isa.OpLDB, "lduh": isa.OpLDH, "lduw": isa.OpLDW,
	"fadd": isa.OpFADD, "fsub": isa.OpFSUB, "fmul": isa.OpFMUL, "fdiv": isa.OpFDIV,
	"fmov": isa.OpFMOV, "fneg": isa.OpFNEG, "fcmp": isa.OpFCMP,
}

// buildInst translates one parsed statement into 1–2 machine instructions.
func (a *assembler) buildInst(st *stmt) ([]isa.Inst, error) {
	mn := st.mn
	if op, ok := memAliases[mn]; ok {
		return a.buildReal(st, op)
	}
	if op, ok := isa.OpByName(mn); ok && op != isa.OpBR {
		return a.buildReal(st, op)
	}
	if cond, ok := isa.CondByName(mn); ok {
		return a.buildBranch(st, cond)
	}
	return a.buildPseudo(st)
}

func (a *assembler) evalImm(st *stmt, e expr) (int64, error) {
	v, err := e.eval(a.symbols)
	if err != nil {
		return 0, a.errf(st.line, "%s: %v", st.mn, err)
	}
	return v, nil
}

func (a *assembler) wantOps(st *stmt, n int) error {
	if len(st.ops) != n {
		return a.errf(st.line, "%s: expected %d operands, got %d", st.mn, n, len(st.ops))
	}
	return nil
}

func (a *assembler) intReg(st *stmt, o operand) (isa.Reg, error) {
	if o.kind != opndReg {
		return 0, a.errf(st.line, "%s: expected integer register", st.mn)
	}
	return o.reg, nil
}

func (a *assembler) fpReg(st *stmt, o operand) (isa.FReg, error) {
	if o.kind != opndFReg {
		return 0, a.errf(st.line, "%s: expected fp register", st.mn)
	}
	return o.freg, nil
}

func (a *assembler) memOp(st *stmt, o operand) (isa.Reg, int64, error) {
	if o.kind != opndMem {
		return 0, 0, a.errf(st.line, "%s: expected memory operand [reg+imm]", st.mn)
	}
	disp, err := a.evalImm(st, o.disp)
	if err != nil {
		return 0, 0, err
	}
	if !isa.ImmFits(disp) {
		return 0, 0, a.errf(st.line, "%s: displacement %d out of range", st.mn, disp)
	}
	return o.base, disp, nil
}

// buildReal handles every non-pseudo opcode.
func (a *assembler) buildReal(st *stmt, op isa.Op) ([]isa.Inst, error) {
	one := func(in isa.Inst) ([]isa.Inst, error) { return []isa.Inst{in}, nil }
	switch op.Class() {
	case isa.ClassInt, isa.ClassIntMul:
		if op == isa.OpLUI {
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			v, err := a.evalImm(st, st.ops[0].e)
			if err != nil {
				return nil, err
			}
			rd, err := a.intReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: isa.OpLUI, Rd: rd, Imm: v})
		}
		// src1, src2|imm, rd
		if err := a.wantOps(st, 3); err != nil {
			return nil, err
		}
		rs1, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[2])
		if err != nil {
			return nil, err
		}
		switch st.ops[1].kind {
		case opndReg:
			if op.HasImm() {
				return nil, a.errf(st.line, "%s: immediate form needs a constant", st.mn)
			}
			return one(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: st.ops[1].reg})
		case opndExpr:
			immOp := op
			if !op.HasImm() {
				var ok bool
				immOp, ok = regToImmOp[op]
				if !ok {
					return nil, a.errf(st.line, "%s: no immediate form", st.mn)
				}
			}
			v, err := a.evalImm(st, st.ops[1].e)
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: immOp, Rd: rd, Rs1: rs1, Imm: v})
		default:
			return nil, a.errf(st.line, "%s: bad second operand", st.mn)
		}

	case isa.ClassLoad:
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		base, disp, err := a.memOp(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		if op.FPRd() {
			f, err := a.fpReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: isa.Reg(f), Rs1: base, Imm: disp})
		}
		rd, err := a.intReg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: disp})

	case isa.ClassStore:
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		base, disp, err := a.memOp(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		if op.FPRd() {
			f, err := a.fpReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: isa.Reg(f), Rs1: base, Imm: disp})
		}
		rd, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: disp})

	case isa.ClassSwap:
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		base, disp, err := a.memOp(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpSWAP, Rd: rd, Rs1: base, Imm: disp})

	case isa.ClassBranch:
		switch op {
		case isa.OpJAL:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			off, err := a.branchOffset(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			rd, err := a.intReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: isa.OpJAL, Rd: rd, Imm: off})
		case isa.OpJALR:
			if err := a.wantOps(st, 3); err != nil {
				return nil, err
			}
			rs1, err := a.intReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			v, err := a.evalImm(st, st.ops[1].e)
			if err != nil {
				return nil, err
			}
			rd, err := a.intReg(st, st.ops[2])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: v})
		}
		return nil, a.errf(st.line, "%s: unsupported branch form", st.mn)

	case isa.ClassFPU:
		switch op {
		case isa.OpFADD, isa.OpFSUB, isa.OpFMUL, isa.OpFDIV:
			if err := a.wantOps(st, 3); err != nil {
				return nil, err
			}
			s1, err := a.fpReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			s2, err := a.fpReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			d, err := a.fpReg(st, st.ops[2])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: isa.Reg(d), Rs1: isa.Reg(s1), Rs2: isa.Reg(s2)})
		case isa.OpFMOV, isa.OpFNEG:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			s, err := a.fpReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			d, err := a.fpReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: isa.Reg(d), Rs1: isa.Reg(s)})
		case isa.OpFITOD, isa.OpMOVR2F:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			s, err := a.intReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			d, err := a.fpReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: isa.Reg(d), Rs1: s})
		case isa.OpFDTOI, isa.OpMOVF2R:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			s, err := a.fpReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			d, err := a.intReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rd: d, Rs1: isa.Reg(s)})
		case isa.OpFCMP:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			s1, err := a.fpReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			s2, err := a.fpReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op, Rs1: isa.Reg(s1), Rs2: isa.Reg(s2)})
		}

	case isa.ClassBarrier:
		if err := a.wantOps(st, 0); err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.OpMEMBAR})

	case isa.ClassSystem:
		switch op {
		case isa.OpNOP, isa.OpHALT, isa.OpIRET:
			if err := a.wantOps(st, 0); err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: op})
		case isa.OpTRAP:
			if err := a.wantOps(st, 1); err != nil {
				return nil, err
			}
			v, err := a.evalImm(st, st.ops[0].e)
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: isa.OpTRAP, Imm: v})
		case isa.OpRDPR:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			if st.ops[0].kind != opndPR {
				return nil, a.errf(st.line, "rdpr: expected privileged register")
			}
			rd, err := a.intReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return one(isa.Inst{Op: isa.OpRDPR, Rd: rd, Imm: int64(st.ops[0].pr)})
		case isa.OpWRPR:
			if err := a.wantOps(st, 2); err != nil {
				return nil, err
			}
			rs, err := a.intReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			if st.ops[1].kind != opndPR {
				return nil, a.errf(st.line, "wrpr: expected privileged register")
			}
			return one(isa.Inst{Op: isa.OpWRPR, Rs1: rs, Imm: int64(st.ops[1].pr)})
		}
	}
	return nil, a.errf(st.line, "unsupported mnemonic %q", st.mn)
}

func (a *assembler) buildBranch(st *stmt, cond isa.Cond) ([]isa.Inst, error) {
	if err := a.wantOps(st, 1); err != nil {
		return nil, err
	}
	off, err := a.branchOffset(st, st.ops[0])
	if err != nil {
		return nil, err
	}
	return []isa.Inst{{Op: isa.OpBR, Cond: cond, Imm: off}}, nil
}

// branchOffset converts a target operand (label or absolute expression) to
// an instruction-count offset relative to the *next* instruction.
func (a *assembler) branchOffset(st *stmt, o operand) (int64, error) {
	if o.kind != opndExpr {
		return 0, a.errf(st.line, "%s: expected branch target", st.mn)
	}
	// Pure literals (e.g. "bnz -4") are taken as offsets directly; anything
	// referencing a symbol is an absolute target address.
	hasSym := len(o.e.symbols()) > 0
	v, err := a.evalImm(st, o.e)
	if err != nil {
		return 0, err
	}
	if !hasSym {
		return v, nil
	}
	next := int64(st.addr) + int64(isa.InstBytes)
	delta := v - next
	if delta%isa.InstBytes != 0 {
		return 0, a.errf(st.line, "%s: misaligned branch target %#x", st.mn, v)
	}
	return delta / isa.InstBytes, nil
}

func (a *assembler) buildPseudo(st *stmt) ([]isa.Inst, error) {
	switch st.mn {
	case "set":
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		v, err := a.evalImm(st, st.ops[0].e)
		if err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return expandSet(v, rd, st, a)
	case "mov":
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		switch st.ops[0].kind {
		case opndReg:
			return []isa.Inst{{Op: isa.OpOR, Rd: rd, Rs1: st.ops[0].reg, Rs2: isa.RegZero}}, nil
		case opndExpr:
			v, err := a.evalImm(st, st.ops[0].e)
			if err != nil {
				return nil, err
			}
			if !isa.ImmFits(v) {
				return nil, a.errf(st.line, "mov: %d out of range (use set)", v)
			}
			return []isa.Inst{{Op: isa.OpADDI, Rd: rd, Rs1: isa.RegZero, Imm: v}}, nil
		}
		return nil, a.errf(st.line, "mov: bad source operand")
	case "cmp":
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		rs1, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		switch st.ops[1].kind {
		case opndReg:
			return []isa.Inst{{Op: isa.OpSUBCC, Rd: isa.RegZero, Rs1: rs1, Rs2: st.ops[1].reg}}, nil
		case opndExpr:
			v, err := a.evalImm(st, st.ops[1].e)
			if err != nil {
				return nil, err
			}
			return []isa.Inst{{Op: isa.OpSUBCCI, Rd: isa.RegZero, Rs1: rs1, Imm: v}}, nil
		}
		return nil, a.errf(st.line, "cmp: bad second operand")
	case "tst":
		if err := a.wantOps(st, 1); err != nil {
			return nil, err
		}
		rs, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpORCC, Rd: isa.RegZero, Rs1: rs, Rs2: isa.RegZero}}, nil
	case "clr":
		if err := a.wantOps(st, 1); err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpOR, Rd: rd, Rs1: isa.RegZero, Rs2: isa.RegZero}}, nil
	case "inc", "dec":
		op := isa.OpADDI
		if st.mn == "dec" {
			op = isa.OpSUBI
		}
		switch len(st.ops) {
		case 1:
			rd, err := a.intReg(st, st.ops[0])
			if err != nil {
				return nil, err
			}
			return []isa.Inst{{Op: op, Rd: rd, Rs1: rd, Imm: 1}}, nil
		case 2:
			v, err := a.evalImm(st, st.ops[0].e)
			if err != nil {
				return nil, err
			}
			rd, err := a.intReg(st, st.ops[1])
			if err != nil {
				return nil, err
			}
			return []isa.Inst{{Op: op, Rd: rd, Rs1: rd, Imm: v}}, nil
		}
		return nil, a.errf(st.line, "%s: expected [amount,] register", st.mn)
	case "neg":
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		rs, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpSUB, Rd: rd, Rs1: isa.RegZero, Rs2: rs}}, nil
	case "not":
		if err := a.wantOps(st, 2); err != nil {
			return nil, err
		}
		rs, err := a.intReg(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		rd, err := a.intReg(st, st.ops[1])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1}}, nil
	case "call":
		if err := a.wantOps(st, 1); err != nil {
			return nil, err
		}
		if st.ops[0].kind == opndReg {
			return []isa.Inst{{Op: isa.OpJALR, Rd: isa.RegRA, Rs1: st.ops[0].reg}}, nil
		}
		off, err := a.branchOffset(st, st.ops[0])
		if err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJAL, Rd: isa.RegRA, Imm: off}}, nil
	case "jmp":
		if err := a.wantOps(st, 1); err != nil {
			return nil, err
		}
		if st.ops[0].kind == opndReg {
			return []isa.Inst{{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: st.ops[0].reg}}, nil
		}
		return nil, a.errf(st.line, "jmp: expected register (use ba for labels)")
	case "ret":
		if err := a.wantOps(st, 0); err != nil {
			return nil, err
		}
		return []isa.Inst{{Op: isa.OpJALR, Rd: isa.RegZero, Rs1: isa.RegRA}}, nil
	}
	return nil, a.errf(st.line, "unknown mnemonic %q", st.mn)
}

// expandSet produces the fixed two-instruction expansion of `set value, rd`.
func expandSet(v int64, rd isa.Reg, st *stmt, a *assembler) ([]isa.Inst, error) {
	switch {
	case v >= 0 && v < 1<<32:
		return []isa.Inst{
			{Op: isa.OpLUI, Rd: rd, Imm: v >> 13},
			{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: v & 0x1fff},
		}, nil
	case isa.ImmFits(v):
		return []isa.Inst{
			{Op: isa.OpADDI, Rd: rd, Rs1: isa.RegZero, Imm: v},
			{Op: isa.OpORI, Rd: rd, Rs1: rd, Imm: 0},
		}, nil
	default:
		return nil, a.errf(st.line, "set: value %d not representable (need 0..2^32-1 or a 14-bit signed value)", v)
	}
}
