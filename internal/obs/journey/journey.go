// Package journey traces the memory-system half of an I/O store's life:
// where the paper's PR-1 observability layer instruments the CPU pipeline
// up to retire, this package follows the store *after* retire — through
// the uncached buffer or the conditional store buffer, across the system
// bus, and into the device — stamping a cycle timestamp at every hop and
// folding the per-hop latencies into fixed-bucket histograms. It is the
// instrumentation behind the paper's §3 latency decomposition (processor
// stall vs. buffer occupancy vs. bus transfer vs. device acceptance).
//
// Three journey kinds are traced:
//
//   - uncached stores: retire/UB-enqueue → UB dequeue (send stage) → bus
//     grant → bus complete (the write landing at the device or memory is
//     the device-acceptance point of the burst);
//   - CSB combining stores: retire/CSB insert-or-combine → successful
//     conditional flush (the ack; a failed flush aborts the journeys, a
//     busy CSB shows up as retried flush attempts in the StallBusy
//     counter) → bus grant of the line burst → bus complete;
//   - NIC transmit descriptors: FIFO accept → transmit start → transmit
//     done (wire serialization included).
//
// The tracer is built for the zero-alloc tick loop: journeys live in
// per-kind preallocated rings, stamps are array writes, and histograms
// have fixed power-of-two buckets — attaching a tracer changes no
// simulated timing and performs no steady-state heap allocations.
package journey

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"csbsim/internal/obs/counters"
)

// Kind labels what a journey follows.
type Kind uint8

const (
	// KindUncachedStore follows one uncached store through the uncached
	// buffer and across the bus.
	KindUncachedStore Kind = iota
	// KindCSBStore follows one combining store through the CSB, its
	// conditional flush, and the line burst.
	KindCSBStore
	// KindNICDesc follows one NIC transmit descriptor from FIFO accept
	// to the end of transmission.
	KindNICDesc
	numKinds
)

var kindNames = [numKinds]string{"uncached_store", "csb_store", "nic_descriptor"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts a kind name (for cmd/csbtrace reading dumps).
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("journey: unknown kind %q", s)
}

// Hop indexes a journey's timestamp array. The four slots have a
// kind-specific meaning; HopNames renders them.
type Hop uint8

const (
	// HopStart is the journey's first stamp: the retiring store accepted
	// by the UB or CSB, or the descriptor accepted by the NIC FIFO.
	HopStart Hop = iota
	// HopDepart is the layer-exit stamp: UB entry popped into the send
	// stage, CSB conditional flush acknowledged (line queued for the
	// bus), or NIC transmission started.
	HopDepart
	// HopBusGrant is the bus-arbitration win of the first transaction
	// carrying the journey's data (unused for NIC descriptors).
	HopBusGrant
	// HopComplete ends the journey: the last bus beat (which is also the
	// cycle the write lands at the device — device acceptance), or the
	// NIC transmission completing.
	HopComplete
	// NumHops sizes the timestamp array.
	NumHops
)

// hopNames maps kind → per-slot labels ("" = slot unused for the kind).
var hopNames = [numKinds][NumHops]string{
	KindUncachedStore: {"retire", "ub_dequeue", "bus_grant", "bus_complete"},
	KindCSBStore:      {"retire", "flush_ok", "bus_grant", "bus_complete"},
	KindNICDesc:       {"fifo_push", "tx_start", "", "tx_done"},
}

// HopNames returns the kind's labels for the four timestamp slots; the
// empty string marks a slot the kind never stamps.
func HopNames(k Kind) [NumHops]string {
	if int(k) < len(hopNames) {
		return hopNames[k]
	}
	return [NumHops]string{}
}

// Journey is one traced store (or descriptor). All timestamps are CPU
// cycles on the machine's shared timeline; a zero stamp means the hop
// was not reached.
type Journey struct {
	ID        uint64          `json:"id"`
	Kind      Kind            `json:"kind"`
	Addr      uint64          `json:"addr"`
	Size      uint32          `json:"size"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Aborted   bool            `json:"aborted,omitempty"`
	Done      bool            `json:"done"`
	T         [NumHops]uint64 `json:"t"`
}

// E2E returns the end-to-end latency (0 until the journey completes).
func (j Journey) E2E() uint64 {
	if !j.Done {
		return 0
	}
	return j.T[HopComplete] - j.T[HopStart]
}

// Config parameterizes the tracer.
type Config struct {
	// Window is the per-kind count of most-recent journeys retained for
	// the dump (default 4096). Histograms and counters always cover the
	// whole run regardless of the window.
	Window int
	// TopN is how many slowest completed journeys are tracked exactly
	// over the whole run (default 32).
	TopN int
}

// DefaultConfig returns the default window and top-N sizes.
func DefaultConfig() Config { return Config{Window: 4096, TopN: 32} }

func (c *Config) fill() error {
	if c.Window == 0 {
		c.Window = 4096
	}
	if c.TopN == 0 {
		c.TopN = 32
	}
	if c.Window < 0 || c.TopN < 0 {
		return fmt.Errorf("journey: negative window or top-N")
	}
	return nil
}

// Tracer assigns journey IDs, stamps hops, and aggregates per-hop
// latency histograms. It implements the Tracer hook interfaces of
// uncbuf, core and device, and is attached through
// sim.Machine.AttachJourneys.
//
// IDs are per-kind and contiguous in acceptance order, which is what
// lets the components pass (first, count) ranges instead of ID lists.
type Tracer struct {
	cfg Config
	now func() uint64

	rings  [numKinds][]Journey
	nextID [numKinds]uint64

	started   [numKinds]uint64
	completed [numKinds]uint64
	aborted   [numKinds]uint64
	stale     uint64 // stamps dropped: journey already evicted from its ring

	slowest []Journey
	slowMin uint64 // smallest E2E currently kept in slowest

	hUBWait     *counters.Histogram
	hCSBCombine *counters.Histogram
	hBusArb     *counters.Histogram
	hBusXfer    *counters.Histogram
	hDevFIFO    *counters.Histogram
	hDevTx      *counters.Histogram
	hE2E        [numKinds]*counters.Histogram
}

// NewTracer creates a tracer stamping with the given clock (the
// machine's CPU-cycle reader). Histograms and run counters are created
// in reg so they render uniformly in the machine report; reg may be nil
// for standalone use.
func NewTracer(cfg Config, reg *counters.Registry, now func() uint64) (*Tracer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if now == nil {
		return nil, fmt.Errorf("journey: nil clock")
	}
	t := &Tracer{cfg: cfg, now: now}
	for k := range t.rings {
		t.rings[k] = make([]Journey, cfg.Window)
	}
	t.slowest = make([]Journey, 0, cfg.TopN)
	if reg == nil {
		reg = counters.NewRegistry()
	}
	t.hUBWait = reg.Histogram("journey/ub/queue_wait")
	t.hCSBCombine = reg.Histogram("journey/csb/combine_window")
	t.hBusArb = reg.Histogram("journey/bus/arb_wait")
	t.hBusXfer = reg.Histogram("journey/bus/xfer")
	t.hDevFIFO = reg.Histogram("journey/device/fifo_wait")
	t.hDevTx = reg.Histogram("journey/device/tx")
	t.hE2E[KindUncachedStore] = reg.Histogram("journey/e2e/uncached_store")
	t.hE2E[KindCSBStore] = reg.Histogram("journey/e2e/csb_store")
	t.hE2E[KindNICDesc] = reg.Histogram("journey/e2e/nic_descriptor")
	for k := Kind(0); k < numKinds; k++ {
		k := k
		reg.Counter("journey/"+k.String()+"/started", func() uint64 { return t.started[k] })
		reg.Counter("journey/"+k.String()+"/completed", func() uint64 { return t.completed[k] })
		reg.Counter("journey/"+k.String()+"/aborted", func() uint64 { return t.aborted[k] })
	}
	reg.Counter("journey/stale_drops", func() uint64 { return t.stale })
	return t, nil
}

// slot returns the ring cell a journey ID lives in (its content is only
// that journey's while the ID check holds).
//
//csb:hotpath
func (t *Tracer) slot(k Kind, id uint64) *Journey {
	return &t.rings[k][(id-1)%uint64(len(t.rings[k]))]
}

// begin opens a journey and stamps HopStart.
//
//csb:hotpath
func (t *Tracer) begin(k Kind, addr uint64, size int, coalesced bool) uint64 {
	t.nextID[k]++
	id := t.nextID[k]
	t.started[k]++
	j := t.slot(k, id)
	*j = Journey{ID: id, Kind: k, Addr: addr, Size: uint32(size), Coalesced: coalesced}
	j.T[HopStart] = t.now()
	return id
}

// stamp records a hop timestamp; it returns nil when the journey has
// already been evicted from its ring (the stamp is counted and dropped).
//
//csb:hotpath
func (t *Tracer) stamp(k Kind, id uint64, h Hop) *Journey {
	j := t.slot(k, id)
	if j.ID != id {
		t.stale++
		return nil
	}
	j.T[h] = t.now()
	return j
}

// stampRange stamps a contiguous ID range.
//
//csb:hotpath
func (t *Tracer) stampRange(k Kind, first uint64, count int, h Hop) {
	for i := 0; i < count; i++ {
		t.stamp(k, first+uint64(i), h)
	}
}

// finish completes a journey: records its per-hop latencies into the
// layer histograms and tracks the slowest set.
//
//csb:hotpath
func (t *Tracer) finish(j *Journey) {
	j.Done = true
	t.completed[j.Kind]++
	switch j.Kind {
	case KindUncachedStore:
		t.hUBWait.Record(j.T[HopDepart] - j.T[HopStart])
		t.hBusArb.Record(j.T[HopBusGrant] - j.T[HopDepart])
		t.hBusXfer.Record(j.T[HopComplete] - j.T[HopBusGrant])
	case KindCSBStore:
		t.hCSBCombine.Record(j.T[HopDepart] - j.T[HopStart])
		t.hBusArb.Record(j.T[HopBusGrant] - j.T[HopDepart])
		t.hBusXfer.Record(j.T[HopComplete] - j.T[HopBusGrant])
	case KindNICDesc:
		t.hDevFIFO.Record(j.T[HopDepart] - j.T[HopStart])
		t.hDevTx.Record(j.T[HopComplete] - j.T[HopDepart])
	}
	e2e := j.E2E()
	t.hE2E[j.Kind].Record(e2e)
	t.noteSlow(j, e2e)
}

// noteSlow keeps the TopN slowest completed journeys (exact over the
// whole run). The fixed-capacity slice never reallocates.
//
//csb:hotpath
func (t *Tracer) noteSlow(j *Journey, e2e uint64) {
	if cap(t.slowest) == 0 {
		return
	}
	if len(t.slowest) < cap(t.slowest) {
		t.slowest = append(t.slowest, *j)
		if len(t.slowest) == 1 || e2e < t.slowMin {
			t.slowMin = e2e
		}
		if len(t.slowest) == cap(t.slowest) {
			t.recomputeSlowMin()
		}
		return
	}
	if e2e <= t.slowMin {
		return
	}
	for i := range t.slowest {
		if t.slowest[i].E2E() == t.slowMin {
			t.slowest[i] = *j
			break
		}
	}
	t.recomputeSlowMin()
}

//csb:hotpath
func (t *Tracer) recomputeSlowMin() {
	min := ^uint64(0)
	for i := range t.slowest {
		if e := t.slowest[i].E2E(); e < min {
			min = e
		}
	}
	t.slowMin = min
}

// abort marks a journey range failed (CSB conflict, flush failure).
// Aborted journeys keep the stamps they collected and stay in the ring
// for the dump, but contribute to no latency histogram.
//
//csb:hotpath
func (t *Tracer) abortRange(k Kind, first uint64, count int) {
	for i := 0; i < count; i++ {
		id := first + uint64(i)
		j := t.slot(k, id)
		if j.ID != id {
			t.stale++
			continue
		}
		j.Aborted = true
		t.aborted[k]++
	}
}

// ---- uncbuf.Tracer ----

// UBStoreAccepted opens an uncached-store journey at retire/enqueue.
//
//csb:hotpath
func (t *Tracer) UBStoreAccepted(addr uint64, size int, coalesced bool) uint64 {
	return t.begin(KindUncachedStore, addr, size, coalesced)
}

// UBEntryDeparted stamps an entry's stores leaving the queue for the
// send stage.
//
//csb:hotpath
func (t *Tracer) UBEntryDeparted(first uint64, count int) {
	t.stampRange(KindUncachedStore, first, count, HopDepart)
}

// UBBusGranted stamps the bus accepting the entry's first transaction.
//
//csb:hotpath
func (t *Tracer) UBBusGranted(first uint64, count int) {
	t.stampRange(KindUncachedStore, first, count, HopBusGrant)
}

// UBEntryDone completes the entry's journeys: its last transaction's
// final beat has passed and the write has landed at the target.
//
//csb:hotpath
func (t *Tracer) UBEntryDone(first uint64, count int) {
	for i := 0; i < count; i++ {
		if j := t.stamp(KindUncachedStore, first+uint64(i), HopComplete); j != nil {
			t.finish(j)
		}
	}
}

// ---- core.Tracer ----

// CSBStoreAccepted opens a combining-store journey at retire.
//
//csb:hotpath
func (t *Tracer) CSBStoreAccepted(addr uint64, size int, combined bool) uint64 {
	return t.begin(KindCSBStore, addr, size, combined)
}

// CSBSequenceAborted marks a buffered sequence lost to a conflict, a
// failed conditional flush, or an injected dropped acknowledgement; the
// §3.2 software retry re-runs the stores as fresh journeys.
//
//csb:hotpath
func (t *Tracer) CSBSequenceAborted(first uint64, count int) {
	t.abortRange(KindCSBStore, first, count)
}

// CSBFlushCommitted stamps a successful conditional flush: the sequence
// is acknowledged and its line queued for the system interface.
//
//csb:hotpath
func (t *Tracer) CSBFlushCommitted(first uint64, count int) {
	t.stampRange(KindCSBStore, first, count, HopDepart)
}

// CSBBusGranted stamps the bus accepting the line burst.
//
//csb:hotpath
func (t *Tracer) CSBBusGranted(first uint64, count int) {
	t.stampRange(KindCSBStore, first, count, HopBusGrant)
}

// CSBLineDone completes the line's journeys at the burst's last beat.
//
//csb:hotpath
func (t *Tracer) CSBLineDone(first uint64, count int) {
	for i := 0; i < count; i++ {
		if j := t.stamp(KindCSBStore, first+uint64(i), HopComplete); j != nil {
			t.finish(j)
		}
	}
}

// ---- device.Tracer ----

// NICDescQueued opens a descriptor journey at FIFO accept.
//
//csb:hotpath
func (t *Tracer) NICDescQueued(offset uint64, length int, viaDMA bool) uint64 {
	return t.begin(KindNICDesc, offset, length, viaDMA)
}

// NICTxStarted stamps the descriptor reaching the head of the FIFO and
// transmission beginning.
//
//csb:hotpath
func (t *Tracer) NICTxStarted(id uint64) {
	t.stamp(KindNICDesc, id, HopDepart)
}

// NICTxDone completes the descriptor journey at end of transmission.
//
//csb:hotpath
func (t *Tracer) NICTxDone(id uint64) {
	if j := t.stamp(KindNICDesc, id, HopComplete); j != nil {
		t.finish(j)
	}
}

// Lookup returns a copy of the journey with the given ID if it is still
// resident in its kind's ring (it may have collected only some of its
// stamps). The cluster wire tracer uses this at packet-departure time to
// graft the sender-side NIC hops onto a cross-node span.
func (t *Tracer) Lookup(k Kind, id uint64) (Journey, bool) {
	if id == 0 || int(k) >= len(t.rings) {
		return Journey{}, false
	}
	j := t.slot(k, id)
	if j.ID != id {
		return Journey{}, false
	}
	return *j, true
}

// ---- reporting ----

// Started returns the number of journeys opened for a kind.
func (t *Tracer) Started(k Kind) uint64 { return t.started[k] }

// Completed returns the number of journeys finished for a kind.
func (t *Tracer) Completed(k Kind) uint64 { return t.completed[k] }

// Aborted returns the number of journeys aborted for a kind.
func (t *Tracer) Aborted(k Kind) uint64 { return t.aborted[k] }

// E2EHistogram returns the end-to-end latency histogram for a kind.
func (t *Tracer) E2EHistogram(k Kind) *counters.Histogram { return t.hE2E[k] }

// Retained returns every journey still in the rings (the most recent
// Window per kind), ordered by start cycle, then kind, then ID — a
// deterministic chronological interleaving across kinds.
func (t *Tracer) Retained() []Journey {
	var out []Journey
	for k := Kind(0); k < numKinds; k++ {
		ring := t.rings[k]
		last := t.nextID[k]
		first := uint64(1)
		if last > uint64(len(ring)) {
			first = last - uint64(len(ring)) + 1
		}
		for id := first; id <= last; id++ {
			j := ring[(id-1)%uint64(len(ring))]
			if j.ID == id {
				out = append(out, j)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].T[HopStart] != out[b].T[HopStart] {
			return out[a].T[HopStart] < out[b].T[HopStart]
		}
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Slowest returns the TopN slowest completed journeys, slowest first
// (ties broken by kind then ID, keeping the order deterministic).
func (t *Tracer) Slowest() []Journey {
	out := make([]Journey, len(t.slowest))
	copy(out, t.slowest)
	sort.Slice(out, func(a, b int) bool {
		ea, eb := out[a].E2E(), out[b].E2E()
		if ea != eb {
			return ea > eb
		}
		if out[a].Kind != out[b].Kind {
			return out[a].Kind < out[b].Kind
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Dump is the on-disk journey trace: run totals, the per-layer latency
// histograms, the exact slowest set, and the retained recent journeys.
// cmd/csbtrace reads this format.
type Dump struct {
	Started    map[string]uint64           `json:"started"`
	Completed  map[string]uint64           `json:"completed"`
	Aborted    map[string]uint64           `json:"aborted"`
	StaleDrops uint64                      `json:"stale_drops"`
	Histograms map[string]counters.Summary `json:"histograms"`
	Slowest    []Journey                   `json:"slowest"`
	Recent     []Journey                   `json:"recent"`
}

// BuildDump assembles the dump structure.
func (t *Tracer) BuildDump() *Dump {
	d := &Dump{
		Started:    make(map[string]uint64, numKinds),
		Completed:  make(map[string]uint64, numKinds),
		Aborted:    make(map[string]uint64, numKinds),
		StaleDrops: t.stale,
		Histograms: make(map[string]counters.Summary, 9),
		Slowest:    t.Slowest(),
		Recent:     t.Retained(),
	}
	for k := Kind(0); k < numKinds; k++ {
		d.Started[k.String()] = t.started[k]
		d.Completed[k.String()] = t.completed[k]
		d.Aborted[k.String()] = t.aborted[k]
	}
	for _, h := range []*counters.Histogram{
		t.hUBWait, t.hCSBCombine, t.hBusArb, t.hBusXfer, t.hDevFIFO, t.hDevTx,
		t.hE2E[KindUncachedStore], t.hE2E[KindCSBStore], t.hE2E[KindNICDesc],
	} {
		d.Histograms[h.Name()] = h.Summary()
	}
	return d
}

// WriteTo writes the dump as indented JSON. Map keys marshal sorted, so
// equal tracer states produce byte-identical dumps.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(t.BuildDump(), "", "  ")
	if err != nil {
		return 0, err
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}
