package cluster

import (
	"testing"

	"csbsim/internal/device"
	"csbsim/internal/mem"
)

func newCluster(t *testing.T, wire uint64) *Cluster {
	t.Helper()
	cfg := DefaultConfig()
	cfg.WireLatency = wire
	c, err := NewPair(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// sendProg writes an 8-byte message with value v and pushes a descriptor.
func sendProg(v int) string {
	return `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set NICREG, %o0
	set PKTBUF, %o1
	set ` + itoa(v) + `, %g1
	stx %g1, [%o1]
	membar
	set 8, %g4
	sll %g4, 48, %g4
	stx %g4, [%o0]
	membar
	halt
`
}

// recvProg polls until one word arrives and stores it at 0x20000.
const recvProg = `
	.equ NICREG, 0x40000000
	set NICREG, %o0
wait:	ldx [%o0+0x28], %g1
	tst %g1
	bz wait
	ldx [%o0+0x20], %g2
	set 0x20000, %o2
	stx %g2, [%o2]
	membar
	halt
`

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestPacketCrossesWire(t *testing.T) {
	c := newCluster(t, 50)
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	if _, err := c.Node(0).M.LoadSource("send.s", sendProg(0x1234)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("recv.s", recvProg); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(1).M.RAM.ReadUint(0x20000, 8); got != 0x1234 {
		t.Errorf("received word = %#x, want 0x1234", got)
	}
}

func TestWireLatencyDelaysDelivery(t *testing.T) {
	cycles := func(wire uint64) uint64 {
		c := newCluster(t, wire)
		c.Node(0).MapIO(false)
		c.Node(1).MapIO(false)
		if _, err := c.Node(0).M.LoadSource("send.s", sendProg(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Node(1).M.LoadSource("recv.s", recvProg); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(1_000_000); err != nil {
			t.Fatal(err)
		}
		return c.Cycle()
	}
	fast := cycles(0)
	slow := cycles(600)
	if slow < fast+500 {
		t.Errorf("wire latency not honored: %d vs %d cycles", fast, slow)
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	c := newCluster(t, 30)
	c.Node(0).MapIO(false)
	c.Node(1).MapIO(false)
	// Each node sends a distinct word and receives the other's.
	both := func(v int) string {
		return `
	.equ NICREG, 0x40000000
	.equ PKTBUF, 0x40001000
	set NICREG, %o0
	set PKTBUF, %o1
	set ` + itoa(v) + `, %g1
	stx %g1, [%o1]
	membar
	set 8, %g4
	sll %g4, 48, %g4
	stx %g4, [%o0]
wait:	ldx [%o0+0x28], %g1
	tst %g1
	bz wait
	ldx [%o0+0x20], %g2
	set 0x20000, %o2
	stx %g2, [%o2]
	membar
	halt
`
	}
	if _, err := c.Node(0).M.LoadSource("a.s", both(111)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("b.s", both(222)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).M.RAM.ReadUint(0x20000, 8); got != 222 {
		t.Errorf("node a received %d, want 222", got)
	}
	if got := c.Node(1).M.RAM.ReadUint(0x20000, 8); got != 111 {
		t.Errorf("node b received %d, want 111", got)
	}
}

func TestNodeFaultSurfaces(t *testing.T) {
	c := newCluster(t, 0)
	c.Node(0).MapIO(false)
	if _, err := c.Node(0).M.LoadSource("bad.s", "set 0x70000000, %o1\nldx [%o1], %g1\nhalt\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(1).M.LoadSource("ok.s", "halt\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1_000_000); err == nil {
		t.Error("node fault not surfaced")
	}
}

func TestMapIOCombining(t *testing.T) {
	c := newCluster(t, 0)
	c.Node(0).MapIO(true)
	pte, ok := c.Node(0).M.AddressSpace(0).Lookup(NICBase + device.PacketBufBase)
	if !ok || pte.Kind != mem.KindCombining {
		t.Errorf("packet buffer not combining: %+v", pte)
	}
	pte, ok = c.Node(0).M.AddressSpace(0).Lookup(NICBase)
	if !ok || pte.Kind != mem.KindUncached {
		t.Errorf("registers not uncached: %+v", pte)
	}
}
