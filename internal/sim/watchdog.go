// The machine watchdog: detects retire-progress livelock and deadlock —
// no instruction committed for a whole window of cycles — and aborts the
// run with a diagnostic dump built from the observability layer, instead
// of letting a wedged guest (or a simulator bug) hang the process. The
// dump answers the question a hang never does: what is the head of the
// ROB waiting on, what does the CPI stack blame, and what is sitting in
// the uncached buffer, the CSB and on the bus.
package sim

import (
	"fmt"
	"strings"

	"csbsim/internal/cpu"
	"csbsim/internal/obs"
)

// wdRingSize is how many recently retired instructions the watchdog keeps
// for the dump's pipeline view.
const wdRingSize = 32

// WatchdogError reports a run aborted by the watchdog. The Dump field
// (also included in Error()) is the full diagnostic state at the moment
// the watchdog tripped.
type WatchdogError struct {
	Window  uint64 // cycles without retire progress that tripped it
	Cycle   uint64 // machine cycle at the trip
	PC      uint64 // committed PC at the trip
	Retired uint64 // instructions retired before the machine wedged
	Dump    string
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("sim: watchdog: no instruction retired in %d cycles (cycle %d, pc %#x, %d retired)\n%s",
		e.Window, e.Cycle, e.PC, e.Retired, e.Dump)
}

// watchdogState tracks retire progress between checks and keeps the
// recent-retirement ring for the dump. The ring write is allocation-free
// (fixed backing array), so an armed watchdog does not disturb the
// zero-alloc tick loop.
type watchdogState struct {
	window      uint64
	countdown   uint64
	lastRetired uint64
	ring        [wdRingSize]cpu.RetireEvent
	ringPos     int
	ringLen     int
}

//csb:hotpath
func (w *watchdogState) observe(ev cpu.RetireEvent) {
	w.ring[w.ringPos] = ev
	w.ringPos = (w.ringPos + 1) % wdRingSize
	if w.ringLen < wdRingSize {
		w.ringLen++
	}
}

// SetWatchdog arms the retire-progress watchdog: if no instruction
// retires for `window` consecutive cycles while the CPU is not halted,
// Run aborts with a *WatchdogError carrying a diagnostic dump. Arm it
// before running; it cannot be re-armed.
func (m *Machine) SetWatchdog(window uint64) error {
	if window == 0 {
		return fmt.Errorf("sim: watchdog window must be positive")
	}
	if m.wd != nil {
		return fmt.Errorf("sim: watchdog already armed")
	}
	m.wd = &watchdogState{window: window, countdown: window,
		lastRetired: m.CPU.Retired()}
	m.CPU.AttachRetire(m.wd.observe)
	return nil
}

// watchdogTrip builds the typed error for a tripped watchdog.
func (m *Machine) watchdogTrip() error {
	return &WatchdogError{
		Window:  m.wd.window,
		Cycle:   m.cycle,
		PC:      m.CPU.State().PC,
		Retired: m.CPU.Retired(),
		Dump:    m.DiagnosticDump(),
	}
}

// DiagnosticDump renders the full machine state for post-mortem
// diagnosis: the stats report, the CPI stall-attribution stack, the
// pipeline (ROB head state), the in-flight uncached-buffer/CSB/bus
// state, device state and errors, and — when the watchdog is armed — a
// pipeline view of the last retired instructions. Not a hot path.
func (m *Machine) DiagnosticDump() string {
	var b strings.Builder
	s := m.Stats()
	fmt.Fprintf(&b, "=== machine state at cycle %d (pc %#x, halted=%v) ===\n",
		m.cycle, m.CPU.State().PC, m.CPU.Halted())
	b.WriteString(s.Report())
	b.WriteString("--- CPI stall stack ---\n")
	b.WriteString(s.ReportCPI())
	b.WriteString("--- pipeline ---\n")
	b.WriteString(m.CPU.PipelineDump())
	fmt.Fprintf(&b, "--- uncached buffer ---\nentries %d, send-stage chunks %d, in-flight txns %d, empty=%v\n",
		m.UB.Len(), m.UB.SendingChunks(), m.UB.InFlight(), m.UB.Empty())
	fmt.Fprintf(&b, "--- csb ---\noccupancy %d/%d bytes, hit count %d, pending lines %d, busy=%v\n",
		m.CSB.Occupancy(), m.Cfg.CSB.LineSize, m.CSB.HitCount(), m.CSB.PendingLines(), m.CSB.Busy())
	fmt.Fprintf(&b, "--- bus ---\n%s\n", m.Bus.DebugString())
	if len(m.devices) > 0 {
		b.WriteString("--- devices ---\n")
		for _, d := range m.devices {
			if str, ok := d.(fmt.Stringer); ok {
				fmt.Fprintf(&b, "%s idle=%v", str, d.Idle())
			} else {
				fmt.Fprintf(&b, "device idle=%v", d.Idle())
			}
			if es, ok := d.(deviceErrSource); ok && es.Err() != nil {
				fmt.Fprintf(&b, " err=%v", es.Err())
			}
			b.WriteByte('\n')
		}
	}
	if w := m.wd; w != nil && w.ringLen > 0 {
		fmt.Fprintf(&b, "--- last %d retired instructions ---\n", w.ringLen)
		cache := make(disasmCache)
		evs := make([]obs.InstEvent, 0, w.ringLen)
		start := (w.ringPos - w.ringLen + wdRingSize) % wdRingSize
		for i := 0; i < w.ringLen; i++ {
			evs = append(evs, instEvent(w.ring[(start+i)%wdRingSize], cache))
		}
		b.WriteString(obs.FormatPipeline(evs))
	}
	return b.String()
}
