// Command csbsim runs an SV9L assembly program on the simulated machine
// and reports execution statistics.
//
// Usage:
//
//	csbsim [flags] program.s
//
// The machine defaults to the paper's configuration (4-wide out-of-order
// core, 64-byte lines, 8-byte multiplexed bus at a 6:1 clock ratio,
// non-combining uncached buffer, 64-byte CSB). Flags adjust the bus model,
// clock ratio, combining scheme and address-space layout; -combining and
// -uncached map extra I/O ranges, e.g.:
//
//	csbsim -combining 0x40000000:64K prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"csbsim"
	"csbsim/internal/bus"
	"csbsim/internal/mem"
	"csbsim/internal/trace"
)

func main() {
	var (
		maxCycles = flag.Uint64("cycles", 100_000_000, "cycle limit")
		ratio     = flag.Int("ratio", 6, "CPU-to-bus clock frequency ratio")
		busModel  = flag.String("bus", "mux", "bus model: mux or split")
		width     = flag.Int("width", 8, "bus data width in bytes")
		turn      = flag.Int("turnaround", 0, "idle bus cycles after each transaction")
		ack       = flag.Int("ackdelay", 0, "min bus cycles between ordered transaction starts")
		line      = flag.Int("line", 64, "cache line / CSB burst size in bytes")
		block     = flag.Int("combine", 0, "uncached buffer combining block (0 = off)")
		comb      = flag.String("combining", "", "map combining space: addr:size (e.g. 0x40000000:64K)")
		unc       = flag.String("uncached", "", "map uncached space: addr:size")
		verbose   = flag.Bool("v", false, "print full statistics")
		traceRun  = flag.Bool("trace", false, "stream the retired-instruction trace to stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbsim [flags] program.s\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := csbsim.DefaultConfig()
	cfg.Ratio = *ratio
	cfg.Bus.WidthBytes = *width
	cfg.Bus.Turnaround = *turn
	cfg.Bus.AckDelay = *ack
	switch *busModel {
	case "mux":
		cfg.Bus.Model = bus.Multiplexed
	case "split":
		cfg.Bus.Model = bus.Split
	default:
		fatal(fmt.Errorf("unknown bus model %q", *busModel))
	}
	cfg.Caches.L1I.LineSize = *line
	cfg.Caches.L1D.LineSize = *line
	cfg.Caches.L2.LineSize = *line
	cfg.CSB.LineSize = *line
	cfg.UB.MaxBurst = *line
	cfg.UB.BlockSize = *block

	m, err := csbsim.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}
	if err := mapRange(m, *comb, mem.KindCombining); err != nil {
		fatal(err)
	}
	if err := mapRange(m, *unc, mem.KindUncached); err != nil {
		fatal(err)
	}

	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}
	if _, err := m.LoadSource(file, string(src)); err != nil {
		fatal(err)
	}
	if *traceRun {
		trace.New(os.Stderr, 0).Attach(m.CPU)
	}
	runErr := m.Run(*maxCycles)
	if out := m.Console(); out != "" {
		fmt.Print(out)
		if !strings.HasSuffix(out, "\n") {
			fmt.Println()
		}
	}
	if runErr != nil {
		fatal(runErr)
	}

	s := m.Stats()
	if *verbose {
		fmt.Print(s.Report())
	} else {
		fmt.Printf("halted after %d cycles (%d bus cycles), %d instructions, IPC %.2f\n",
			s.Cycles, s.BusCycles, s.CPU.Retired, s.CPU.IPC())
	}
}

// mapRange parses "addr:size" with optional K/M suffixes and maps it.
func mapRange(m *csbsim.Machine, spec string, kind mem.Kind) error {
	if spec == "" {
		return nil
	}
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return fmt.Errorf("bad range %q (want addr:size)", spec)
	}
	addr, err := parseNum(parts[0])
	if err != nil {
		return err
	}
	size, err := parseNum(parts[1])
	if err != nil {
		return err
	}
	m.MapRange(addr, size, kind)
	return nil
}

func parseNum(s string) (uint64, error) {
	mult := uint64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult = 1 << 10
		s = s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult = 1 << 20
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), pickBase(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v * mult, nil
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbsim:", err)
	os.Exit(1)
}
