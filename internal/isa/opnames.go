package isa

import "strings"

var opByName = func() map[string]Op {
	m := make(map[string]Op, int(numOps))
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// OpByName looks up an opcode by its canonical mnemonic (case-insensitive).
// Assembler-level aliases and pseudo-instructions are handled by the asm
// package, not here.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[strings.ToLower(name)]
	return op, ok
}

var prNames = [NumPRs]string{
	PRPID: "pid", PRERPC: "erpc", PRIVEC: "ivec", PRSTATUS: "status",
	PRCYCLE: "cycle", PRSCRATCH: "scratch", PRCAUSE: "cause",
}

// PRName returns the assembler name of a privileged register.
func PRName(pr PR) string {
	if pr >= NumPRs {
		return "pr?"
	}
	return prNames[pr]
}

// PRByName looks up a privileged register by name (with or without a
// leading %).
func PRByName(name string) (PR, bool) {
	t := strings.TrimPrefix(strings.ToLower(name), "%")
	for pr, n := range prNames {
		if n == t {
			return PR(pr), true
		}
	}
	return 0, false
}

// CondByName looks up a branch condition by its mnemonic (e.g. "bnz"),
// including common SPARC aliases.
func CondByName(name string) (Cond, bool) {
	t := strings.ToLower(name)
	switch t {
	case "be":
		return CondE, true
	case "bne":
		return CondNE, true
	case "bcs", "blu":
		return CondCS, true
	case "bcc", "bgeu":
		return CondCC, true
	case "blt":
		return CondL, true
	case "bgt":
		return CondG, true
	}
	for c := Cond(0); c < NumConds; c++ {
		if condNames[c] == t {
			return c, true
		}
	}
	return 0, false
}
