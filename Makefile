# Build/test entry points; `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: all build vet test race bench-smoke obsbench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark — catches bit-rot in the measurement
# harnesses without paying for full benchmark runs.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

# Re-measure the observability overhead baseline.
obsbench:
	$(GO) run ./cmd/obsbench > BENCH_observability.json

ci: vet build race bench-smoke
