// Command csbvet runs the repository's invariant analyzers (see
// internal/analysis) over Go packages:
//
//	noretain     pooled bus.Txn / uop / rename-snapshot pointers must not
//	             be retained past the delivering call
//	determinism  no wall-clock time, math/rand or unsorted map iteration
//	             in the deterministic simulation packages
//	hotalloc     no heap-allocating constructs in //csb:hotpath functions
//
// Usage:
//
//	csbvet [-analyzers noretain,determinism,hotalloc] [packages]
//
// Packages default to ./... of the module containing the current
// directory. Exits 1 when any diagnostic is reported, 2 on usage or load
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"csbsim/internal/analysis"
	"csbsim/internal/analysis/determinism"
	"csbsim/internal/analysis/hotalloc"
	"csbsim/internal/analysis/noretain"
)

var all = []*analysis.Analyzer{
	noretain.Analyzer,
	determinism.Analyzer,
	hotalloc.Analyzer,
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbvet [-analyzers list] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := all
	if *names != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "csbvet: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	l, err := analysis.NewLoader(root, patterns...)
	if err != nil {
		fatal(err)
	}
	found := false
	for _, path := range l.Targets() {
		pkg, err := l.LoadTarget(path)
		if err != nil {
			fatal(err)
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			found = true
			fmt.Println(d)
		}
	}
	if found {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbvet:", err)
	os.Exit(2)
}
