package asm

import "fmt"

// expr is a constant expression: a sum of signed terms, where each term is
// either a literal or a symbol reference. This covers everything the
// microbenchmarks and examples need (label, label+off, a-b, plain numbers)
// without a full expression grammar.
type expr struct {
	terms []exprTerm
}

type exprTerm struct {
	neg bool
	num int64
	sym string // empty for literal terms
}

func litExpr(v int64) expr { return expr{terms: []exprTerm{{num: v}}} }

// eval resolves the expression against a symbol table.
func (e expr) eval(syms map[string]uint64) (int64, error) {
	var v int64
	for _, t := range e.terms {
		tv := t.num
		if t.sym != "" {
			sv, ok := syms[t.sym]
			if !ok {
				return 0, fmt.Errorf("undefined symbol %q", t.sym)
			}
			tv = int64(sv)
		}
		if t.neg {
			v -= tv
		} else {
			v += tv
		}
	}
	return v, nil
}

// symbols returns the symbols referenced by the expression.
func (e expr) symbols() []string {
	var out []string
	for _, t := range e.terms {
		if t.sym != "" {
			out = append(out, t.sym)
		}
	}
	return out
}

// parseExpr parses a sum expression from toks starting at *i, leaving *i at
// the first token that is not part of the expression.
func parseExpr(toks []token, i *int) (expr, error) {
	var e expr
	neg := false
	first := true
	for {
		if *i < len(toks) && toks[*i].kind == tokPunct {
			switch toks[*i].text {
			case "-":
				neg = !neg
				*i++
				continue
			case "+":
				*i++
				continue
			}
		}
		if *i >= len(toks) {
			return e, fmt.Errorf("expected expression term")
		}
		t := toks[*i]
		switch t.kind {
		case tokNumber:
			e.terms = append(e.terms, exprTerm{neg: neg, num: t.num})
		case tokIdent:
			e.terms = append(e.terms, exprTerm{neg: neg, sym: t.text})
		default:
			if first {
				return e, fmt.Errorf("expected expression, found %s", t)
			}
			return e, nil
		}
		*i++
		neg = false
		first = false
		// Continue only if the next token is +/-.
		if *i < len(toks) && toks[*i].kind == tokPunct && (toks[*i].text == "+" || toks[*i].text == "-") {
			continue
		}
		return e, nil
	}
}
