// Command csbvet runs the repository's invariant analyzers (see
// internal/analysis) over Go packages:
//
//	noretain     pooled bus.Txn / uop / rename-snapshot pointers must not
//	             be retained past the delivering call
//	determinism  no wall-clock time, math/rand or unsorted map iteration
//	             in the deterministic simulation packages
//	hotalloc     no heap-allocating constructs in //csb:hotpath functions
//	phasesafe    //csb:worker code must not reach barrier-only APIs or
//	             cross-node shared state (parallel engine phase contract)
//	clockdomain  cycle stamps from different node clock domains must not
//	             mix without a ctrace.SetAlign-derived offset
//
// Usage:
//
//	csbvet [-analyzers noretain,determinism,hotalloc,phasesafe,clockdomain] [-json] [packages]
//
// Packages default to ./... of the module containing the current
// directory. With -json, diagnostics are emitted as one JSON array of
// {file, line, col, analyzer, message} objects (file paths relative to
// the module root) for CI annotation tooling. Exits 1 when any
// diagnostic is reported, 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"csbsim/internal/analysis"
	"csbsim/internal/analysis/clockdomain"
	"csbsim/internal/analysis/determinism"
	"csbsim/internal/analysis/hotalloc"
	"csbsim/internal/analysis/noretain"
	"csbsim/internal/analysis/phasesafe"
)

var all = []*analysis.Analyzer{
	noretain.Analyzer,
	determinism.Analyzer,
	hotalloc.Analyzer,
	phasesafe.Analyzer,
	clockdomain.Analyzer,
}

// jsonDiag is the -json wire shape of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: csbvet [-analyzers list] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers := all
	if *names != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "csbvet: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		fatal(err)
	}
	l, err := analysis.NewLoader(root, patterns...)
	if err != nil {
		fatal(err)
	}
	var found []jsonDiag
	for _, path := range l.Targets() {
		pkg, err := l.LoadTarget(path)
		if err != nil {
			fatal(err)
		}
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			if !*asJSON {
				fmt.Println(d)
			}
			file := d.Pos.Filename
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
			found = append(found, jsonDiag{
				File:     file,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if found == nil {
			found = []jsonDiag{}
		}
		if err := enc.Encode(found); err != nil {
			fatal(err)
		}
	}
	if len(found) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "csbvet:", err)
	os.Exit(2)
}
